"""Shared grouping-aggregation state machine.

Both GAggr (plain) and SMA_GAggr (Figure 7) advance the same per-group
state; the latter additionally advances it from SMA-file entries for
qualifying buckets.  The three phases of the paper's Section 3.3 map to
:meth:`AggregationState.__init__` (allocate + initialize), the
``consume_batch`` / ``advance_*`` calls (advance), and
:meth:`AggregationState.finalize` (divide sums by counts for averages).

A ``count(*)`` is always tracked per group even when the query does not
ask for it — exactly as the paper prescribes: "If the result aggregates
do not contain a count(*) and if averages are demanded by the query, we
add it."  It also decides group *presence*: a group appears in the
output only if at least one tuple satisfied the predicate.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import AggregateKind
from repro.core.grouping import GroupKey, bucket_groups
from repro.errors import ExecutionError
from repro.query.query import OutputAggregate
from repro.storage.schema import Schema
from repro.storage.types import TypeKind, int_to_date


class _GroupState:
    """Mutable accumulator for one group.

    SUM/AVG contributions are kept as an *ordered list* of per-batch
    partial sums and folded left-to-right at finalize time.  The fold
    reproduces exactly the floating-point result of a running ``+=`` in
    contribution order — which means a morsel-parallel execution that
    concatenates its workers' contribution lists in morsel (= bucket)
    order finalizes to results byte-identical to the serial plan.
    """

    __slots__ = ("count", "sums", "mins", "maxs")

    def __init__(self, num_aggregates: int):
        self.count = 0
        #: per-aggregate ordered lists of SUM/AVG contributions
        self.sums: list[list] = [[] for _ in range(num_aggregates)]
        self.mins: list[object] = [None] * num_aggregates
        self.maxs: list[object] = [None] * num_aggregates


class AggregationState:
    """Per-group running aggregates for one grouping-aggregation query."""

    def __init__(
        self,
        schema: Schema | None,
        group_by: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
        *,
        is_date_result: list[bool] | None = None,
    ):
        self.schema = schema
        self.group_by = group_by
        self.aggregates = aggregates
        self._groups: dict[GroupKey, _GroupState] = {}
        # min/max over DATE columns accumulate as int day numbers and
        # convert back at finalize; remember which outputs need that.
        # A schema-less state (shard router reconstructing partials from
        # the wire) must receive the flags explicitly instead.
        if is_date_result is not None:
            self._is_date_result = list(is_date_result)
        else:
            if schema is None:
                raise ExecutionError(
                    "a schema-less AggregationState needs explicit "
                    "is_date_result flags"
                )
            self._is_date_result = []
            for aggregate in aggregates:
                is_date = False
                if aggregate.spec.kind in (AggregateKind.MIN, AggregateKind.MAX):
                    assert aggregate.spec.argument is not None
                    result = aggregate.spec.argument.result_type(schema)
                    is_date = result.kind is TypeKind.DATE
                self._is_date_result.append(is_date)

    @property
    def is_date_result(self) -> list[bool]:
        """Which outputs convert int day numbers to dates at finalize."""
        return list(self._is_date_result)

    def group_items(self):
        """Iterate ``(group_key, _GroupState)`` pairs (serde/testing API)."""
        return self._groups.items()

    def _state(self, key: GroupKey) -> _GroupState:
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(len(self.aggregates))
            self._groups[key] = state
        return state

    # ------------------------------------------------------------------
    # advancing from raw tuples (ambivalent buckets / plain GAggr)
    # ------------------------------------------------------------------

    def consume_batch(self, batch: np.ndarray) -> None:
        """Fold one (already filtered) record batch into the state."""
        if len(batch) == 0:
            return
        keys, inverse = bucket_groups(batch, self.group_by, self.schema)
        argument_values: list[np.ndarray | None] = []
        for aggregate in self.aggregates:
            spec = aggregate.spec
            argument_values.append(
                None if spec.argument is None else spec.argument.evaluate(batch)
            )
        if len(keys) == 1:
            # Single-group fast path: whole-array reductions, no masks.
            state = self._state(keys[0])
            state.count += len(batch)
            for i, aggregate in enumerate(self.aggregates):
                kind = aggregate.spec.kind
                if kind is AggregateKind.COUNT:
                    continue  # served by the shared per-group count
                values = argument_values[i]
                assert values is not None
                if kind in (AggregateKind.SUM, AggregateKind.AVG):
                    state.sums[i].append(values.sum())
                elif kind is AggregateKind.MIN:
                    low = values.min()
                    if state.mins[i] is None or low < state.mins[i]:
                        state.mins[i] = low
                elif kind is AggregateKind.MAX:
                    high = values.max()
                    if state.maxs[i] is None or high > state.maxs[i]:
                        state.maxs[i] = high
            return
        # Fused multi-group kernel: one stable sort of the group-inverse
        # replaces G per-group boolean masks (O(G*N) mask scans become a
        # single O(N log N) argsort plus one gather per aggregate).  The
        # segment for group j holds the same elements the boolean mask
        # would have gathered, in the same order, so ``seg.sum()`` is
        # bit-identical to ``values[inverse == j].sum()``.
        counts = np.bincount(inverse, minlength=len(keys))
        order = np.argsort(inverse, kind="stable")
        bounds = np.cumsum(counts)
        sorted_values = [
            None if values is None else np.ascontiguousarray(values[order])
            for values in argument_values
        ]
        start = 0
        for j, key in enumerate(keys):
            end = int(bounds[j])
            state = self._state(key)
            state.count += int(counts[j])
            for i, aggregate in enumerate(self.aggregates):
                kind = aggregate.spec.kind
                if kind is AggregateKind.COUNT:
                    continue  # served by the shared per-group count
                values = sorted_values[i]
                assert values is not None
                seg = values[start:end]
                if kind in (AggregateKind.SUM, AggregateKind.AVG):
                    state.sums[i].append(seg.sum())
                elif kind is AggregateKind.MIN:
                    low = seg.min()
                    if state.mins[i] is None or low < state.mins[i]:
                        state.mins[i] = low
                elif kind is AggregateKind.MAX:
                    high = seg.max()
                    if state.maxs[i] is None or high > state.maxs[i]:
                        state.maxs[i] = high
            start = end

    # ------------------------------------------------------------------
    # advancing from SMA entries (qualifying buckets in SMA_GAggr)
    # ------------------------------------------------------------------

    def advance_count(self, key: GroupKey, count: int) -> None:
        if count:
            self._state(key).count += int(count)

    def advance_sum(self, key: GroupKey, index: int, total: object) -> None:
        self._state(key).sums[index].append(total)

    def advance_min(self, key: GroupKey, index: int, value: object) -> None:
        state = self._state(key)
        if state.mins[index] is None or value < state.mins[index]:
            state.mins[index] = value

    def advance_max(self, key: GroupKey, index: int, value: object) -> None:
        state = self._state(key)
        if state.maxs[index] is None or value > state.maxs[index]:
            state.maxs[index] = value

    def load_group(
        self,
        key: GroupKey,
        count: int,
        sums: list[list],
        mins: list[object],
        maxs: list[object],
    ) -> None:
        """Install one deserialized group (shard wire reconstruction).

        ``sums`` holds the per-aggregate ordered contribution lists
        exactly as the worker built them; they are extended, not summed,
        so a later :meth:`merge` + :meth:`finalize` stays byte-exact.
        """
        state = self._state(key)
        state.count += int(count)
        for i in range(len(self.aggregates)):
            state.sums[i].extend(sums[i])
            low = mins[i]
            if low is not None and (state.mins[i] is None or low < state.mins[i]):
                state.mins[i] = low
            high = maxs[i]
            if high is not None and (state.maxs[i] is None or high > state.maxs[i]):
                state.maxs[i] = high

    # ------------------------------------------------------------------
    # merging partial states (morsel-parallel scans)
    # ------------------------------------------------------------------

    def merge(self, other: "AggregationState") -> None:
        """Fold *other* (a partial state over disjoint tuples) into self.

        Contribution order is preserved: *other*'s per-group SUM/AVG
        contributions append after the ones already held here.  Merging
        per-morsel partials in morsel order therefore reconstructs the
        exact contribution sequence a serial execution would have built,
        and :meth:`finalize` returns byte-identical results.
        """
        if other.aggregates != self.aggregates or other.group_by != self.group_by:
            raise ExecutionError("cannot merge aggregation states of different queries")
        for key, partial in other._groups.items():
            state = self._state(key)
            state.count += partial.count
            for i in range(len(self.aggregates)):
                state.sums[i].extend(partial.sums[i])
                low = partial.mins[i]
                if low is not None and (state.mins[i] is None or low < state.mins[i]):
                    state.mins[i] = low
                high = partial.maxs[i]
                if high is not None and (state.maxs[i] is None or high > state.maxs[i]):
                    state.maxs[i] = high

    # ------------------------------------------------------------------
    # finalize (phase three)
    # ------------------------------------------------------------------

    @staticmethod
    def _fold_sum(contributions: list) -> object:
        # Left fold from int 0: operation-for-operation what the old
        # running ``+=`` accumulator computed, so finalized sums are
        # bit-identical to pre-contribution-list behaviour.
        total: object = 0
        for part in contributions:
            total = total + part
        return total

    def _finalize_value(self, state: _GroupState, index: int) -> object:
        kind = self.aggregates[index].spec.kind
        if kind is AggregateKind.COUNT:
            return state.count
        if kind is AggregateKind.SUM:
            if state.count == 0:
                return None
            total = self._fold_sum(state.sums[index])
            return total.item() if isinstance(total, np.generic) else total
        if kind is AggregateKind.AVG:
            if state.count == 0:
                return None
            total = self._fold_sum(state.sums[index])
            return float(total) / state.count
        store = state.mins if kind is AggregateKind.MIN else state.maxs
        value = store[index]
        if value is None:
            return None
        if isinstance(value, bytes):
            return value.rstrip(b"\x00").decode("ascii", errors="replace")
        if self._is_date_result[index]:
            return int_to_date(int(value))
        if isinstance(value, np.generic):
            return value.item()
        return value

    def finalize(self) -> tuple[list[str], list[tuple]]:
        """Output ``(columns, rows)``; groups with zero tuples are dropped.

        An ungrouped query always yields exactly one row (count 0, None
        aggregates when nothing qualified), per SQL semantics.
        """
        columns = list(self.group_by) + [a.name for a in self.aggregates]
        rows: list[tuple] = []
        if not self.group_by:
            state = self._groups.get((), _GroupState(len(self.aggregates)))
            rows.append(
                tuple(self._finalize_value(state, i) for i in range(len(self.aggregates)))
            )
            return columns, rows
        for key in sorted(self._groups, key=repr):
            state = self._groups[key]
            if state.count == 0:
                continue
            values = tuple(
                self._finalize_value(state, i) for i in range(len(self.aggregates))
            )
            rows.append(key + values)
        return columns, rows

    @property
    def num_groups(self) -> int:
        return len(self._groups)


def find_aggregate_index(
    aggregates: tuple[OutputAggregate, ...], name: str
) -> int:
    """Position of the output aggregate called *name*."""
    for i, aggregate in enumerate(aggregates):
        if aggregate.name == name:
            return i
    raise ExecutionError(f"no aggregate named {name!r}")
