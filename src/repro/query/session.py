"""Session façade: execute queries, measure wall-clock and simulated time.

A :class:`Session` binds a catalog to a disk model, runs queries through
the planner and returns :class:`QueryResult` objects carrying the rows
plus both clocks (measured wall seconds, simulated 1998 seconds) and the
exact I/O counter delta — the measurement surface every experiment in
this reproduction is built on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.obs.trace import resolve_tracer
from repro.query.parallel import DEFAULT_MORSEL_BUCKETS, ScanParallelism
from repro.query.planner import Explanation, Plan, PlanInfo, Planner
from repro.query.query import (
    AggregateQuery,
    DeleteStatement,
    DmlStatement,
    ExplainQuery,
    InsertStatement,
    ScanQuery,
    UpdateStatement,
)
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel, PAPER_DISK
from repro.storage.stats import CostBreakdown, IoStats


@dataclass
class QueryResult:
    """Rows plus full cost accounting for one query execution."""

    columns: list[str]
    rows: list[tuple]
    stats: IoStats
    wall_seconds: float
    cost: CostBreakdown
    plan: PlanInfo
    warm: bool = field(default=False)
    #: the table's ingest epoch this execution ran against: the pinned
    #: snapshot epoch for reads, the newly produced epoch for DML.
    epoch: int | None = field(default=None)

    @property
    def simulated_seconds(self) -> float:
        """Simulated 1998-hardware seconds for this execution."""
        return self.cost.total_s

    def column(self, name: str) -> list:
        """All values of one output column.

        Raises :class:`KeyError` naming the available columns when *name*
        is not one of them.
        """
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no output column {name!r}; have {self.columns}"
            ) from None
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        lines.extend(" | ".join(str(v) for v in row) for row in self.rows)
        lines.append(
            f"[{len(self.rows)} rows; wall {self.wall_seconds:.4f}s; "
            f"simulated {self.simulated_seconds:.3f}s; {self.plan.strategy}]"
        )
        return "\n".join(lines)


@dataclass
class PartialQueryResult(QueryResult):
    """One shard's contribution to a scatter-gathered aggregate query.

    ``state`` is the un-finalized
    :class:`~repro.query.aggregation.AggregationState` the worker built
    over its bucket range; ``rows`` stays empty — the router merges the
    per-shard states in shard order and finalizes once.
    """

    state: object | None = field(default=None)


def _sort_rows(
    rows: list[tuple],
    columns: list[str],
    order_by: tuple[str, ...],
    order_desc: frozenset[str] = frozenset(),
) -> list[tuple]:
    if not order_by:
        return rows
    # Stable multi-key sort with per-key direction: apply keys from the
    # least significant to the most significant.
    ordered = list(rows)
    for name in reversed(order_by):
        index = columns.index(name)
        ordered.sort(key=lambda row: row[index], reverse=name in order_desc)
    return ordered


def assert_same_result(actual: QueryResult, expected: QueryResult) -> None:
    """Assert two executions produced the same relation, byte for byte.

    Compares columns and rows only — accounting and timing legitimately
    differ between runs.  Values must be *identical* (``1.0 != 1.0 + 1e-18``
    fails): the morsel-parallel operators promise bit-equal floating
    point results, and the integration tests hold them to it.
    """
    if actual.columns != expected.columns:
        raise AssertionError(
            f"column mismatch: {actual.columns} != {expected.columns}"
        )
    if len(actual.rows) != len(expected.rows):
        raise AssertionError(
            f"row count mismatch: {len(actual.rows)} != {len(expected.rows)}"
        )
    for i, (got, want) in enumerate(zip(actual.rows, expected.rows)):
        if got != want:
            raise AssertionError(f"row {i} differs: {got!r} != {want!r}")
        for j, (a, b) in enumerate(zip(got, want)):
            # Catch near-equal floats that compare == only after rounding
            # display; repr equality is bit equality for Python floats.
            if isinstance(a, float) and isinstance(b, float) and repr(a) != repr(b):
                raise AssertionError(
                    f"row {i} column {j} not bit-identical: {a!r} != {b!r}"
                )


class Session:
    """Execute queries against a catalog with full cost accounting.

    ``scan_workers`` > 1 enables morsel-driven intra-query parallelism:
    the planner swaps the serial scan operators for their morsel
    variants, whose results are byte-identical to serial execution.
    ``scan_backend`` picks where morsels run: ``"thread"`` (default, in
    process) or ``"process"`` (persistent worker-process pool, see
    :mod:`repro.query.procpool`).
    """

    def __init__(
        self,
        catalog: Catalog,
        disk_model: DiskModel = PAPER_DISK,
        *,
        scan_workers: int = 1,
        morsel_buckets: int = DEFAULT_MORSEL_BUCKETS,
        scan_backend: str = "thread",
        tracer=None,
    ):
        self.catalog = catalog
        self.disk_model = disk_model
        self.parallelism = ScanParallelism(
            workers=scan_workers,
            morsel_buckets=morsel_buckets,
            backend=scan_backend,
        )
        #: observability: None resolves to the shared no-op tracer, so
        #: un-instrumented callers pay nothing.
        self.tracer = resolve_tracer(tracer)
        self.planner = Planner(
            catalog, disk_model, parallelism=self.parallelism, tracer=self.tracer
        )

    def execute(
        self,
        query: AggregateQuery | ScanQuery | DmlStatement,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        cold: bool = False,
    ) -> QueryResult:
        """Plan and run *query*, measuring the whole window.

        ``cold=True`` empties the buffer pool first (the paper's cold
        runs); otherwise whatever previous queries cached stays warm.
        Planning happens *inside* the measured window — grading cost is
        part of SMA query cost, exactly as in the paper's operators.

        Reads pin the table's ingest epoch at admission: the plan binds
        against a :class:`~repro.storage.table.TableView` snapshot, so a
        concurrent DML batch is either entirely visible or entirely
        invisible — never torn.  DML statements route to the
        crash-consistent write path and return a one-row
        ``(rows_affected, epoch)`` relation.

        The stats window is resolved through ``pool.stats``: the shared
        catalog counters normally, the bound per-query window when the
        caller (the query service) wrapped this thread in
        :meth:`~repro.storage.buffer.BufferPool.query_context` — which is
        what makes concurrent executions account independently.
        """
        if isinstance(
            query, (InsertStatement, UpdateStatement, DeleteStatement)
        ):
            return self._execute_dml(query)
        if cold:
            self.catalog.go_cold()
            if self.parallelism.use_processes:
                from repro.query import procpool

                procpool.go_cold(self.catalog.root_dir)
        pool = self.catalog.pool
        pool.reset_sequence_tracking()
        window = pool.stats
        before = window.snapshot()
        started = time.perf_counter()

        tracer = self.tracer
        # Admission: pin the table's ingest epoch.  Everything after this
        # line reads one bucket-generation snapshot.
        view = self.catalog.pin_view(query.table)
        # Root when standalone (`repro trace`), child of the service's
        # per-query root span when running on an executor worker.
        with tracer.span(
            "execute", attrs={"mode": mode, "table": query.table}
        ) as exec_span:
            with tracer.span("plan"):
                plan = self._plan(query, mode=mode, sma_set=sma_set, table=view)
            with tracer.span("run", attrs={"strategy": plan.info.strategy}):
                columns, rows = plan.run()
            exec_span.annotate(strategy=plan.info.strategy)

        wall = time.perf_counter() - started
        delta = window.snapshot() - before
        if isinstance(query, AggregateQuery):
            rows = _sort_rows(rows, columns, query.order_by, query.order_desc)
        return QueryResult(
            columns=columns,
            rows=rows,
            stats=delta,
            wall_seconds=wall,
            cost=self.disk_model.cost(delta),
            plan=plan.info,
            warm=not cold,
            epoch=view.epoch,
        )

    def _execute_dml(self, statement: DmlStatement) -> QueryResult:
        """Run one DML statement through the crash-consistent write path.

        Same measured window as reads; the result relation is the single
        ``(rows_affected, epoch)`` row the DML plan produces, with the
        produced epoch echoed on ``QueryResult.epoch``.
        """
        pool = self.catalog.pool
        pool.reset_sequence_tracking()
        window = pool.stats
        before = window.snapshot()
        started = time.perf_counter()

        tracer = self.tracer
        with tracer.span(
            "execute", attrs={"dml": True, "table": statement.table}
        ) as exec_span:
            with tracer.span("plan"):
                plan = self.planner.plan_dml(statement)
            with tracer.span("run", attrs={"strategy": plan.info.strategy}):
                columns, rows = plan.run()
            exec_span.annotate(strategy=plan.info.strategy)

        wall = time.perf_counter() - started
        delta = window.snapshot() - before
        return QueryResult(
            columns=columns,
            rows=rows,
            stats=delta,
            wall_seconds=wall,
            cost=self.disk_model.cost(delta),
            plan=plan.info,
            warm=True,
            epoch=rows[0][1] if rows else None,
        )

    def execute_shared(
        self,
        query: AggregateQuery,
        *,
        dispatcher,
        timeout_s: float | None = None,
    ) -> QueryResult:
        """Run *query* through a shared bucket pass (attach-or-lead).

        Same measured window, epoch pinning and result shape as
        :meth:`execute`; the state computation routes through
        *dispatcher* (a
        :class:`~repro.query.sharedscan.SharedScanDispatcher`), which
        either leads one cooperative pass for every consumer gathered at
        this ``(table, epoch)`` or attaches to a pending one.  Raises
        :class:`~repro.query.sharedscan.SharedScanDetached` when this
        consumer lost its pass — callers fall back to :meth:`execute`.
        """
        if not isinstance(query, AggregateQuery):
            raise PlanningError(
                "shared-scan execution applies to aggregate queries only"
            )
        pool = self.catalog.pool
        pool.reset_sequence_tracking()
        window = pool.stats
        before = window.snapshot()
        started = time.perf_counter()

        tracer = self.tracer
        view = self.catalog.pin_view(query.table)
        with tracer.span(
            "execute", attrs={"shared": True, "table": query.table}
        ) as exec_span:
            outcome = dispatcher.run(
                view,
                query,
                parallelism=self.parallelism,
                tracer=tracer,
                timeout_s=timeout_s,
            )
            exec_span.annotate(strategy=outcome.info.strategy)

        wall = time.perf_counter() - started
        delta = window.snapshot() - before
        rows = _sort_rows(
            outcome.rows, outcome.columns, query.order_by, query.order_desc
        )
        return QueryResult(
            columns=outcome.columns,
            rows=rows,
            stats=delta,
            wall_seconds=wall,
            cost=self.disk_model.cost(delta),
            plan=outcome.info,
            warm=True,
            epoch=view.epoch,
        )

    def execute_partial(
        self,
        query: AggregateQuery,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        cold: bool = False,
    ) -> PartialQueryResult:
        """Plan and run *query* up to its un-finalized aggregation state.

        The shard-worker entry point: identical to :meth:`execute`
        (planning inside the measured window, full cost accounting) but
        stops before ``finalize()`` so the caller can merge this state
        with other shards' partials order-preservingly.
        """
        if not isinstance(query, AggregateQuery):
            raise PlanningError(
                "partial execution applies to aggregate queries only"
            )
        if cold:
            self.catalog.go_cold()
            if self.parallelism.use_processes:
                from repro.query import procpool

                procpool.go_cold(self.catalog.root_dir)
        pool = self.catalog.pool
        pool.reset_sequence_tracking()
        window = pool.stats
        before = window.snapshot()
        started = time.perf_counter()

        tracer = self.tracer
        view = self.catalog.pin_view(query.table)
        with tracer.span(
            "execute", attrs={"mode": mode, "partial": True, "table": query.table}
        ) as exec_span:
            with tracer.span("plan"):
                plan = self._plan(query, mode=mode, sma_set=sma_set, table=view)
            with tracer.span("run", attrs={"strategy": plan.info.strategy}):
                state = plan.physical.run_state()
            exec_span.annotate(strategy=plan.info.strategy)

        wall = time.perf_counter() - started
        delta = window.snapshot() - before
        return PartialQueryResult(
            columns=list(query.output_columns),
            rows=[],
            stats=delta,
            wall_seconds=wall,
            cost=self.disk_model.cost(delta),
            plan=plan.info,
            warm=not cold,
            epoch=view.epoch,
            state=state,
        )

    def _plan(
        self,
        query: AggregateQuery | ScanQuery,
        *,
        mode: str,
        sma_set: str | None,
        table=None,
    ) -> Plan:
        return self.planner.plan(query, mode=mode, sma_set=sma_set, table=table)

    def explain(
        self,
        query: AggregateQuery | ScanQuery,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
    ) -> Explanation:
        """Plan without running (SMA grading I/O is still charged).

        Returns the full :class:`~repro.query.planner.Explanation`:
        physical plan tree, per-alternative cost estimates, grading
        breakdown and the chosen-vs-rejected access paths.
        """
        return self._plan(query, mode=mode, sma_set=sma_set).explanation

    def _explain_result(
        self,
        statement: ExplainQuery,
        *,
        mode: str,
        sma_set: str | None,
        cold: bool,
    ) -> QueryResult:
        """Run ``EXPLAIN SELECT ...``: plan only, rows are the plan text."""
        if cold:
            self.catalog.go_cold()
            if self.parallelism.use_processes:
                from repro.query import procpool

                procpool.go_cold(self.catalog.root_dir)
        pool = self.catalog.pool
        pool.reset_sequence_tracking()
        window = pool.stats
        before = window.snapshot()
        started = time.perf_counter()
        with self.tracer.span("execute", attrs={"mode": mode, "explain": True}):
            with self.tracer.span("plan"):
                plan = self._plan(statement.query, mode=mode, sma_set=sma_set)
        wall = time.perf_counter() - started
        delta = window.snapshot() - before
        lines = plan.explanation.render().splitlines()
        return QueryResult(
            columns=["QUERY PLAN"],
            rows=[(line,) for line in lines],
            stats=delta,
            wall_seconds=wall,
            cost=self.disk_model.cost(delta),
            plan=plan.info,
            warm=not cold,
        )

    # ------------------------------------------------------------------
    # SQL text entry points
    # ------------------------------------------------------------------

    def sql(
        self,
        text: str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        cold: bool = False,
    ) -> QueryResult:
        """Parse and execute one SQL statement.

        SELECT runs against a pinned epoch snapshot; INSERT/UPDATE/DELETE
        go through the crash-consistent write path and return their
        ``(rows_affected, epoch)`` row.  ``EXPLAIN SELECT ...`` plans
        without executing and returns the rendered plan as rows of a
        single ``QUERY PLAN`` column, exactly like the direct statements
        return their relation.
        """
        from repro.sql.parser import parse_statement

        statement = parse_statement(text)
        if isinstance(statement, ExplainQuery):
            return self._explain_result(
                statement, mode=mode, sma_set=sma_set, cold=cold
            )
        if not isinstance(
            statement,
            (
                AggregateQuery,
                ScanQuery,
                InsertStatement,
                UpdateStatement,
                DeleteStatement,
            ),
        ):
            raise PlanningError(
                "Session.sql executes SELECT and DML statements; use "
                "Session.define_smas for define sma scripts"
            )
        return self.execute(statement, mode=mode, sma_set=sma_set, cold=cold)

    def define_smas(
        self,
        text: str,
        *,
        set_name: str = "default",
        separate_scans: bool = False,
    ):
        """Parse a ``define sma`` script, build and register the set.

        All definitions must target the same (already loaded) table.
        Returns ``(SmaSet, list[SmaBuildReport])``.
        """
        import os

        from repro.core.builder import build_sma_set
        from repro.sql.parser import parse_definitions

        definitions = parse_definitions(text)
        if not definitions:
            raise PlanningError("no define sma statements in script")
        tables = {definition.table_name for definition in definitions}
        if len(tables) != 1:
            raise PlanningError(
                f"all SMAs of one set must target one table, got {sorted(tables)}"
            )
        (table_name,) = tables
        table = self.catalog.table(table_name)
        directory = os.path.join(self.catalog.sma_dir(table_name), set_name)
        sma_set, reports = build_sma_set(
            table,
            definitions,
            directory=directory,
            name=set_name,
            separate_scans=separate_scans,
        )
        self.catalog.register_sma_set(table_name, sma_set)
        return sma_set, reports
