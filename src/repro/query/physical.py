"""Physical plan trees: named operator nodes bound to real operators.

The planner's access-path enumerator decides *what* to run (which
strategy, which SMA set); this module decides *how* — it binds a chosen
access path to concrete operators and wraps them in a
:class:`PhysicalPlan`: an inspectable tree of :class:`PlanNode`\\ s plus
one typed runner (:data:`~repro.query.query.PlanRunner`).

The serial-vs-morsel-parallel decision is made in exactly one place,
:func:`scan_binding` — every strategy consults it, so enabling scan
workers swaps *all* plans onto their morsel operators consistently and
EXPLAIN always shows which execution mode was bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExecutionError
from repro.obs.trace import NO_TRACER
from repro.query.gaggr import GAggr, ParallelGAggr
from repro.query.iterators import (
    Filter,
    MorselScan,
    Operator,
    Project,
    SeqScan,
    SmaScan,
)
from repro.query.logical import LogicalDml, LogicalPlan
from repro.query.parallel import ScanParallelism
from repro.query.query import PlanRunner, QueryRows
from repro.query.sma_gaggr import SmaGAggr
from repro.storage.table import Table
from repro.storage.types import python_value


@dataclass(frozen=True)
class PlanNode:
    """One named operator node of a physical plan tree."""

    name: str
    #: ordered (key, rendered value) pairs shown in brackets after the name
    props: tuple[tuple[str, str], ...] = ()
    children: tuple["PlanNode", ...] = ()

    def prop(self, key: str) -> str | None:
        """The rendered value of one property, or None."""
        for name, value in self.props:
            if name == key:
                return value
        return None

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        if not self.props:
            return self.name
        inner = ", ".join(f"{key}={value}" for key, value in self.props)
        return f"{self.name} [{inner}]"

    def render(self) -> str:
        """Multi-line tree rendering (box-drawing connectors)."""
        out = [self.label()]
        for i, child in enumerate(self.children):
            last = i == len(self.children) - 1
            connector = "└─ " if last else "├─ "
            continuation = "   " if last else "│  "
            child_lines = child.render().splitlines()
            out.append(connector + child_lines[0])
            out.extend(continuation + line for line in child_lines[1:])
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class PhysicalPlan:
    """An executable plan: a node tree plus its bound runner(s).

    ``state_runner`` is the partial-execution seam: aggregate plans
    additionally bind their operator's ``collect_state``, which yields
    the un-finalized :class:`~repro.query.aggregation.AggregationState`
    shard workers ship to the router for order-preserving merging.
    Tuple-returning plans leave it None.
    """

    root: PlanNode
    runner: PlanRunner
    state_runner: "Callable[[], object] | None" = None

    def run(self) -> QueryRows:
        return self.runner()

    @property
    def supports_partial(self) -> bool:
        return self.state_runner is not None

    def run_state(self):
        """Run to an un-finalized aggregation state (shard workers)."""
        if self.state_runner is None:
            raise ExecutionError(
                "this plan does not support partial (state) execution"
            )
        return self.state_runner()

    def render(self) -> str:
        return self.root.render()

    def __str__(self) -> str:
        return self.render()


# ----------------------------------------------------------------------
# the single serial-vs-parallel seam
# ----------------------------------------------------------------------


def scan_binding(
    parallelism: ScanParallelism | None,
) -> tuple[str, ScanParallelism | None]:
    """Resolve the execution mode every physical plan binds against.

    Returns ``(mode_label, effective_parallelism)`` where the label is
    ``"serial"``, ``"morsel(workers=N)"`` (thread backend) or
    ``"morsel(workers=N, backend=process)"``, and the parallelism is
    None whenever execution should use the serial operators.  This is
    the only place in the engine where that decision is made.
    """
    if parallelism is not None and parallelism.enabled:
        if parallelism.backend != "thread":
            label = (
                f"morsel(workers={parallelism.workers}, "
                f"backend={parallelism.backend})"
            )
            return label, parallelism
        return f"morsel(workers={parallelism.workers})", parallelism
    return "serial", None


# ----------------------------------------------------------------------
# node helpers
# ----------------------------------------------------------------------


def _fraction(part: int, whole: int) -> str:
    return f"{part}/{whole}"


def _grade_node(partitioning, sma_set) -> PlanNode:
    total = partitioning.num_buckets
    return PlanNode(
        "SmaGrade",
        props=(
            ("sma_set", sma_set.name),
            ("qualifying", _fraction(partitioning.num_qualifying, total)),
            ("ambivalent", _fraction(partitioning.num_ambivalent, total)),
            ("disqualifying", _fraction(partitioning.num_disqualifying, total)),
        ),
    )


def _scan_node(table: Table, mode: str) -> PlanNode:
    return PlanNode(
        "SeqScan" if mode == "serial" else "MorselScan",
        props=(
            ("table", table.name),
            ("buckets", str(table.num_buckets)),
            ("mode", mode),
        ),
    )


def _aggregate_props(logical: LogicalPlan) -> tuple[tuple[str, str], ...]:
    props: list[tuple[str, str]] = []
    if logical.group_by:
        props.append(("group_by", ", ".join(logical.group_by)))
    props.append(
        ("aggregates", ", ".join(str(a) for a in logical.aggregates))
    )
    return tuple(props)


def _materialize_rows(operator: Operator) -> PlanRunner:
    """Runner for tuple-returning plans: batches → Python-value rows."""

    def runner() -> QueryRows:
        schema = operator.schema
        dtypes = [schema.dtype_of(name) for name in schema.names]
        columns = list(schema.names)
        rows = [
            tuple(
                python_value(dtype, value)
                for dtype, value in zip(dtypes, record)
            )
            for record in operator.rows()
        ]
        return columns, rows

    return runner


def _traced_runner(
    runner: PlanRunner, tracer, name: str, table: Table
) -> PlanRunner:
    """Wrap a *serial, monolithic* runner in one io-carrying span.

    Only used for operators with no internal instrumentation (GAggr,
    SeqScan, SmaScan pipelines): the single span is then the leaf that
    accounts the whole execution.  Parallel operators must NOT be
    wrapped this way — their per-morsel spans carry the I/O, and the
    dispatcher merges worker windows into the calling window, which an
    enclosing io span would double-count.
    """
    if not tracer.enabled:
        return runner

    def traced() -> QueryRows:
        # pool.stats resolves on the executing thread at run time, so
        # the span charges the right per-query window under the service.
        with tracer.span(name, stats=table.heap.pool.stats):
            return runner()

    return traced


def _traced_state_runner(state_runner, tracer, name: str, table: Table):
    """Same single-span wrapping for a serial ``collect_state`` runner."""
    if not tracer.enabled:
        return state_runner

    def traced():
        with tracer.span(name, stats=table.heap.pool.stats):
            return state_runner()

    return traced


# ----------------------------------------------------------------------
# binding: access path -> operators + node tree
# ----------------------------------------------------------------------


def bind_aggregate_plan(
    table: Table,
    logical: LogicalPlan,
    strategy: str,
    parallelism: ScanParallelism | None,
    *,
    sma_set=None,
    partitioning=None,
    tracer=NO_TRACER,
) -> PhysicalPlan:
    """Bind an aggregate access path ("sma_gaggr" or "gaggr")."""
    mode, parallel = scan_binding(parallelism)
    predicate = logical.predicate
    if strategy == "sma_gaggr":
        operator = SmaGAggr(
            table,
            predicate,
            logical.group_by,
            logical.aggregates,
            sma_set,
            partitioning=partitioning,
            parallelism=parallel,
            tracer=tracer,
        )
        fetch = PlanNode(
            "BucketFetch",
            props=(
                ("table", table.name),
                (
                    "buckets",
                    _fraction(
                        partitioning.num_ambivalent, partitioning.num_buckets
                    ),
                ),
                ("which", "ambivalent"),
                ("mode", mode),
            ),
        )
        root = PlanNode(
            "SmaGAggr",
            props=_aggregate_props(logical) + (("sma_set", sma_set.name),),
            children=(_grade_node(partitioning, sma_set), fetch),
        )
        return PhysicalPlan(
            root, operator.execute, state_runner=operator.collect_state
        )
    if strategy == "gaggr":
        if parallel is not None:
            operator = ParallelGAggr(
                table,
                predicate,
                logical.group_by,
                logical.aggregates,
                parallel,
                tracer=tracer,
            )
            root = PlanNode(
                "ParallelGAggr",
                props=_aggregate_props(logical)
                + (
                    ("filter", str(predicate)),
                    ("workers", str(parallel.workers)),
                    ("morsel_buckets", str(parallel.morsel_buckets)),
                ),
                children=(_scan_node(table, mode),),
            )
        else:
            operator = GAggr(
                Filter(SeqScan(table), predicate),
                logical.group_by,
                logical.aggregates,
            )
            root = PlanNode(
                "GAggr",
                props=_aggregate_props(logical),
                children=(
                    PlanNode(
                        "Filter",
                        props=(("predicate", str(predicate)),),
                        children=(_scan_node(table, mode),),
                    ),
                ),
            )
            return PhysicalPlan(
                root,
                _traced_runner(operator.execute, tracer, "scan_aggregate", table),
                state_runner=_traced_state_runner(
                    operator.collect_state, tracer, "scan_aggregate", table
                ),
            )
        return PhysicalPlan(
            root, operator.execute, state_runner=operator.collect_state
        )
    raise ValueError(f"unknown aggregate strategy {strategy!r}")


def bind_scan_plan(
    table: Table,
    logical: LogicalPlan,
    strategy: str,
    parallelism: ScanParallelism | None,
    *,
    sma_set=None,
    partitioning=None,
    tracer=NO_TRACER,
) -> PhysicalPlan:
    """Bind a tuple-returning access path ("sma_scan" or "seq_scan")."""
    mode, parallel = scan_binding(parallelism)
    predicate = logical.predicate
    if strategy == "sma_scan":
        if parallel is not None:
            operator: Operator = MorselScan(
                table, predicate, parallel, partitioning=partitioning, tracer=tracer
            )
        else:
            operator = SmaScan(
                table, predicate, sma_set, partitioning=partitioning
            )
        fetched = partitioning.num_buckets - partitioning.num_disqualifying
        root = PlanNode(
            "SmaScan" if parallel is None else "MorselSmaScan",
            props=(
                ("table", table.name),
                ("predicate", str(predicate)),
                ("buckets", _fraction(fetched, partitioning.num_buckets)),
                ("mode", mode),
            ),
            children=(_grade_node(partitioning, sma_set),),
        )
    elif strategy == "seq_scan":
        if parallel is not None:
            operator = MorselScan(table, predicate, parallel, tracer=tracer)
            root = PlanNode(
                "MorselScan",
                props=(
                    ("table", table.name),
                    ("filter", str(predicate)),
                    ("buckets", str(table.num_buckets)),
                    ("mode", mode),
                ),
            )
        else:
            operator = Filter(SeqScan(table), predicate)
            root = PlanNode(
                "Filter",
                props=(("predicate", str(predicate)),),
                children=(_scan_node(table, mode),),
            )
    else:
        raise ValueError(f"unknown scan strategy {strategy!r}")
    if logical.columns:
        operator = Project(operator, logical.columns)
        root = PlanNode(
            "Project",
            props=(("columns", ", ".join(logical.columns)),),
            children=(root,),
        )
    runner = _materialize_rows(operator)
    if parallel is None:
        # Serial pipelines have no internal spans: one leaf span covers
        # the whole scan.  Morsel plans get per-worker spans instead.
        runner = _traced_runner(runner, tracer, strategy, table)
    return PhysicalPlan(root, runner)


def bind_dml_plan(catalog, logical: LogicalDml, *, tracer=NO_TRACER) -> PhysicalPlan:
    """Bind a DML logical plan to the crash-consistent apply path.

    The runner funnels into :func:`repro.core.ingest.apply_dml` (intent
    append → data pages → SMA advancement → retire + epoch bump) and
    returns a one-row relation ``(rows_affected, epoch)`` so callers see
    both what the batch did and the epoch it produced.
    """
    from repro.core.ingest import apply_dml

    op_node = {"insert": "Insert", "update": "Update", "delete": "Delete"}
    if logical.op not in op_node:
        raise ValueError(f"unknown DML op {logical.op!r}")
    props: list[tuple[str, str]] = [("table", logical.table)]
    if logical.op == "insert":
        props.append(("rows", str(len(logical.rows))))
    else:
        if logical.op == "update":
            props.append(
                ("set", ", ".join(name for name, _ in logical.assignments))
            )
        props.append(("predicate", str(logical.predicate)))
    root = PlanNode(
        op_node[logical.op],
        props=tuple(props),
        children=(
            PlanNode("WriteAheadIntent", props=(("op", logical.op),)),
            PlanNode(
                "SmaMaintain",
                props=(
                    (
                        "action",
                        "advance" if logical.op == "insert" else "recompute",
                    ),
                ),
            ),
        ),
    )

    def runner() -> QueryRows:
        with tracer.span(
            "apply_dml", attrs={"op": logical.op, "table": logical.table}
        ):
            outcome = apply_dml(catalog, logical.source)
        return (
            ["rows_affected", "epoch"],
            [(outcome.rows_affected, outcome.epoch)],
        )

    return PhysicalPlan(root, runner)
