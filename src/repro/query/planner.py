"""Plan generation in the presence of SMAs (Section 3).

The planner turns a logical plan into a physical one in three explicit
steps:

1. **build** the :class:`~repro.query.logical.LogicalPlan` (predicate
   normalization, projection pushdown — :mod:`repro.query.logical`);
2. **enumerate** access paths: every candidate SMA set is graded
   against the predicate and costed through one shared routine, next to
   the sequential-scan alternative, and the global minimum wins
   (``mode="sma"``/``"scan"`` restrict the enumeration instead of
   bypassing it);
3. **bind** the winning path to physical operators
   (:mod:`repro.query.physical`), where the serial-vs-morsel decision
   is made in exactly one place.

The two closed-form costs come from the disk model:

* ``cost_scan``: read every page sequentially, charge every tuple;
* ``cost_sma``: read all needed SMA-files sequentially, charge every SMA
  entry, then fetch only the buckets the operator will touch (ambivalent
  ones for SMA_GAggr; qualifying + ambivalent for SMA_Scan), paying a
  skip charge for every gap in the fetch sequence.

The paper's ≈ 25 % break-even of Figure 5 is *not* hard-coded anywhere;
it emerges from these two formulas (read it off ``EXPLAIN`` at two
selectivities — see EXPERIMENTS.md).  Grading is cheap (it touches only
SMA-files, ~0.1 % of the data), so the planner *actually grades* every
candidate; when scan wins, the discarded grading work costs < 2 % of
the scan — the paper's own worst case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregates import AggregateSpec
from repro.core.partition import BucketPartitioning
from repro.core.sma_set import SmaSet
from repro.errors import PlanningError, SmaIntegrityError, SmaStateError
from repro.lang.predicate import Predicate, atoms
from repro.obs.trace import NO_TRACER
from repro.query.logical import LogicalPlan, build_logical, build_logical_dml
from repro.query.parallel import ScanParallelism, resolve_parallelism
from repro.query.physical import (
    PhysicalPlan,
    PlanNode,
    bind_aggregate_plan,
    bind_dml_plan,
    bind_scan_plan,
)
from repro.query.query import (
    AggregateQuery,
    DeleteStatement,
    DmlStatement,
    InsertStatement,
    QueryRows,
    ScanQuery,
    UpdateStatement,
)
from repro.query.sma_gaggr import sma_covers, sma_requirements
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel, PAPER_DISK
from repro.storage.table import Table

_MODES = ("auto", "sma", "scan")


@dataclass(frozen=True)
class GradingSummary:
    """The three-way bucket grading of one SMA set for one predicate."""

    num_buckets: int
    num_qualifying: int
    num_disqualifying: int
    num_ambivalent: int

    @classmethod
    def of(cls, partitioning: BucketPartitioning) -> "GradingSummary":
        return cls(
            num_buckets=partitioning.num_buckets,
            num_qualifying=partitioning.num_qualifying,
            num_disqualifying=partitioning.num_disqualifying,
            num_ambivalent=partitioning.num_ambivalent,
        )

    def _fraction(self, part: int) -> float:
        return part / self.num_buckets if self.num_buckets else 0.0

    @property
    def fraction_qualifying(self) -> float:
        return self._fraction(self.num_qualifying)

    @property
    def fraction_disqualifying(self) -> float:
        return self._fraction(self.num_disqualifying)

    @property
    def fraction_ambivalent(self) -> float:
        return self._fraction(self.num_ambivalent)

    def __str__(self) -> str:
        return (
            f"{self.num_buckets} buckets: "
            f"{self.fraction_qualifying:.1%} qualifying, "
            f"{self.fraction_ambivalent:.1%} ambivalent, "
            f"{self.fraction_disqualifying:.1%} disqualifying"
        )


@dataclass
class AccessPath:
    """One costed alternative the enumerator produced."""

    strategy: str  # "sma_gaggr" | "gaggr" | "sma_scan" | "seq_scan"
    est_seconds: float | None
    sma_set: SmaSet | None = None
    partitioning: BucketPartitioning | None = None
    grading: GradingSummary | None = None
    chosen: bool = False
    note: str = ""

    @property
    def sma_set_name(self) -> str | None:
        return self.sma_set.name if self.sma_set is not None else None

    def describe(self) -> str:
        label = self.strategy
        if self.sma_set is not None:
            label += f" via {self.sma_set.name!r}"
        cost = (
            f"est {self.est_seconds:.3f}s"
            if self.est_seconds is not None
            else "not costed"
        )
        marker = "-> " if self.chosen else "   "
        suffix = f"  ({self.note})" if self.note else ""
        return f"{marker}{label:<28} {cost}{suffix}"


@dataclass
class PlanInfo:
    """What the planner decided and why (returned with every result)."""

    strategy: str  # "sma_gaggr" | "gaggr" | "sma_scan" | "seq_scan"
    reason: str
    sma_set_name: str | None = None
    fraction_ambivalent: float | None = None
    est_sma_seconds: float | None = None
    est_scan_seconds: float | None = None
    #: the planned table and the full grading mix — fed into the
    #: per-table grading gauges of the metrics exposition.
    table: str | None = None
    fraction_qualifying: float | None = None
    fraction_disqualifying: float | None = None

    def __str__(self) -> str:
        lines = [f"strategy: {self.strategy} ({self.reason})"]
        if self.sma_set_name is not None:
            lines.append(f"sma set: {self.sma_set_name}")
        if self.fraction_ambivalent is not None:
            lines.append(f"ambivalent buckets: {self.fraction_ambivalent:.1%}")
        if self.est_sma_seconds is not None and self.est_scan_seconds is not None:
            lines.append(
                f"estimated cost: sma {self.est_sma_seconds:.3f}s vs "
                f"scan {self.est_scan_seconds:.3f}s (simulated)"
            )
        return "\n".join(lines)


@dataclass
class Explanation:
    """Everything EXPLAIN shows: tree, costs, grading, alternatives."""

    query: str  # the normalized logical form
    mode: str
    info: PlanInfo
    tree: PlanNode
    alternatives: tuple[AccessPath, ...]
    grading: GradingSummary | None

    @property
    def strategy(self) -> str:
        return self.info.strategy

    def render(self) -> str:
        lines = [self.query, f"mode: {self.mode}", "", "physical plan:"]
        lines.extend("  " + line for line in self.tree.render().splitlines())
        lines.append("")
        lines.append(str(self.info))
        if self.grading is not None:
            lines.append(f"grading: {self.grading}")
        if self.alternatives:
            lines.append("alternatives:")
            lines.extend(
                "  " + path.describe() for path in self.alternatives
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Plan:
    """An executable plan: call :meth:`run` to produce (columns, rows)."""

    info: PlanInfo
    physical: PhysicalPlan
    explanation: Explanation | None = field(repr=False, default=None)

    def run(self) -> QueryRows:
        return self.physical.run()

    def explain(self) -> Explanation:
        return self.explanation


def fetch_io_profile(
    fetched: np.ndarray, pages_per_bucket: int
) -> tuple[int, int]:
    """Split a bucket-fetch pattern into (sequential, skip) page counts.

    Consecutive fetched buckets stream; every gap costs one skip charge
    on the first page after it.  The very first fetched bucket counts as
    a skip (the scan has to position once).
    """
    indices = np.flatnonzero(fetched)
    if len(indices) == 0:
        return 0, 0
    gaps = int((np.diff(indices) > 1).sum()) + 1  # +1 for initial positioning
    total_pages = len(indices) * pages_per_bucket
    return total_pages - gaps, gaps


def clip_to_view(
    partitioning: BucketPartitioning, table: Table
) -> BucketPartitioning:
    """Bound a grading to a pinned :class:`~repro.storage.table.TableView`.

    Grading runs against the *live* SMA-files, which a concurrent insert
    may have grown past the view's pinned geometry (or not yet caught up
    with).  The clip makes the partitioning sound for the snapshot:

    * entries beyond the pinned bucket count are dropped (those buckets
      do not exist for this query); missing entries pad as ambivalent;
    * the pinned trailing bucket is forced ambivalent — its SMA entry
      advances *in place* during a concurrent top-up, so its min/max may
      describe rows the snapshot excludes.  Ambivalent routes it through
      the view's truncating bucket read, which is always exact.

    No-op for an unpinned base table.
    """
    pin = getattr(table, "pin", None)
    if pin is None:
        return partitioning
    buckets = int(pin["buckets"])
    qualifying = partitioning.qualifying
    disqualifying = partitioning.disqualifying
    if len(qualifying) < buckets:
        pad = buckets - len(qualifying)
        qualifying = np.concatenate([qualifying, np.zeros(pad, dtype=bool)])
        disqualifying = np.concatenate(
            [disqualifying, np.zeros(pad, dtype=bool)]
        )
    else:
        qualifying = qualifying[:buckets].copy()
        disqualifying = disqualifying[:buckets].copy()
    per_bucket = table.layout.tuples_per_bucket
    if buckets and int(pin["trailing"]) < per_bucket:
        qualifying[-1] = False
        disqualifying[-1] = False
    return BucketPartitioning(qualifying, disqualifying)


class Planner:
    """Chooses and builds physical plans against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        disk_model: DiskModel = PAPER_DISK,
        parallelism: ScanParallelism | int | None = None,
        tracer=NO_TRACER,
    ):
        self.catalog = catalog
        self.disk_model = disk_model
        #: morsel-parallel scan config; None or workers=1 keeps every
        #: plan on the serial operators.
        self.parallelism = resolve_parallelism(parallelism)
        self.tracer = tracer

    # ------------------------------------------------------------------
    # candidate selection
    # ------------------------------------------------------------------

    def _candidate_sets(
        self, table: Table, sma_set: str | SmaSet | None
    ) -> list[SmaSet]:
        if isinstance(sma_set, SmaSet):
            return [sma_set]
        if isinstance(sma_set, str):
            return [self.catalog.sma_set(table.name, sma_set)]
        return self.catalog.sma_sets(table.name)

    def _sma_pages_entries(
        self,
        sma_set: SmaSet,
        predicate: Predicate,
        aggregate_specs: list[AggregateSpec],
        group_by: tuple[str, ...],
    ) -> tuple[int, int, int]:
        """Pages, entries and file count of every SMA-file the SMA plan
        would read (selection SMAs for grading plus, for aggregate
        queries, the aggregate SMAs the roll-up needs)."""
        files: dict[int, object] = {}

        def note(sma) -> None:
            files[id(sma)] = sma

        for atom in atoms(predicate):
            for column in atom.columns():
                sma_set.column_bounds(column, note)
                # count-SMA files would also be read; approximate by the
                # bounds files (count grading is rare and tiny anyway).
        for spec in aggregate_specs:
            found = sma_set.rollup_aggregate_files(spec, group_by)
            if found:
                for sma in found[0].values():
                    note(sma)
        pages = sum(sma.num_pages for sma in files.values())
        entries = sum(sma.num_entries for sma in files.values())
        return pages, entries, len(files)

    # ------------------------------------------------------------------
    # shared costing
    # ------------------------------------------------------------------

    def _est_scan(self, table: Table) -> float:
        """Closed-form scan cost, plus one positioning seek to start."""
        model = self.disk_model
        return (
            model.scan_seconds(table.num_pages, table.num_records)
            + model.random_page_s
        )

    def _est_sma(
        self,
        table: Table,
        sma_set: SmaSet,
        predicate: Predicate,
        fetched: np.ndarray,
        aggregate_specs: list[AggregateSpec],
        group_by: tuple[str, ...],
    ) -> float:
        """Closed-form SMA-plan cost for fetching *fetched* buckets.

        One routine for both operators: SMA_GAggr fetches the ambivalent
        buckets, SMA_Scan everything not disqualifying.  Every SMA-file
        opened costs one positioning seek on top of its sequential read.
        """
        model = self.disk_model
        sma_pages, sma_entries, num_files = self._sma_pages_entries(
            sma_set, predicate, aggregate_specs, group_by
        )
        seq_pages, skip_pages = fetch_io_profile(
            fetched, table.layout.pages_per_bucket
        )
        counts = np.asarray(table.bucket_counts())
        fetch_tuples = int(counts[fetched].sum())
        return (
            model.sma_seconds(
                sma_pages, sma_entries, seq_pages, skip_pages, fetch_tuples
            )
            + num_files * model.random_page_s
        )

    # ------------------------------------------------------------------
    # access-path enumeration
    # ------------------------------------------------------------------

    def _enumerate(
        self,
        table: Table,
        logical: LogicalPlan,
        mode: str,
        sma_set: str | SmaSet | None,
    ) -> list[AccessPath]:
        """Grade and cost every alternative the mode allows.

        Returns at least one path; SMA candidates are graded (charging
        their SMA-file reads — the planner really does this work) and
        costed through :meth:`_est_sma`; the scan alternative is always
        present unless ``mode="sma"`` excludes it.
        """
        aggregate = logical.kind == "aggregate"
        scan_strategy = "gaggr" if aggregate else "seq_scan"
        sma_strategy = "sma_gaggr" if aggregate else "sma_scan"
        specs = sma_requirements(logical.aggregates) if aggregate else []

        paths: list[AccessPath] = []
        if mode != "scan":
            for candidate in self._usable_sets(table, logical, sma_set):
                try:
                    partitioning = self._grade_candidate(candidate, logical)
                except SmaStateError:
                    # Transient length mismatch while a concurrent insert
                    # grows heap and SMA-files out of lockstep; the scan
                    # alternative below still serves this query.
                    continue
                if partitioning is None:
                    # Integrity quarantine drained this candidate during
                    # grading; the scan alternative below still serves.
                    continue
                partitioning = clip_to_view(partitioning, table)
                grading = GradingSummary.of(partitioning)
                fetched = (
                    partitioning.ambivalent
                    if aggregate
                    else ~partitioning.disqualifying
                )
                with self.tracer.span(
                    "cost_access_path", attrs={"sma_set": candidate.name}
                ) as cost_span:
                    est = self._est_sma(
                        table,
                        candidate,
                        logical.predicate,
                        fetched,
                        specs,
                        logical.group_by,
                    )
                    cost_span.annotate(est_seconds=est)
                paths.append(
                    AccessPath(
                        strategy=sma_strategy,
                        est_seconds=est,
                        sma_set=candidate,
                        partitioning=partitioning,
                        grading=grading,
                    )
                )
        if mode != "sma":
            # Forced scans skip grading entirely, so their cost estimate
            # is reported but never competed against an SMA path.
            paths.append(
                AccessPath(
                    strategy=scan_strategy,
                    est_seconds=self._est_scan(table),
                    note="full sequential scan",
                )
            )
        return paths

    def _usable_sets(
        self,
        table: Table,
        logical: LogicalPlan,
        sma_set: str | SmaSet | None,
    ) -> list[SmaSet]:
        """Candidate SMA sets that can serve this logical plan at all.

        Usability checks run under the integrity screen: an SMA-file that
        fails verification gets its definition quarantined and the check
        retried without it, so a damaged SMA degrades the candidate (or
        removes it — leaving the heap-scan path) instead of failing the
        query.
        """
        candidates = self._candidate_sets(table, sma_set)
        if logical.kind == "aggregate":
            def covers(candidate: SmaSet) -> bool:
                if not sma_covers(candidate, logical.aggregates, logical.group_by):
                    return False
                # Probe the aggregate files the roll-up would bind to:
                # corruption must surface here — where quarantine turns
                # it into a heap fallback — not mid-execution.
                for spec in sma_requirements(logical.aggregates):
                    found = candidate.rollup_aggregate_files(spec, logical.group_by)
                    if found is None:
                        return False
                    for sma in found[0].values():
                        sma.ensure_readable()
                return True

            return [
                candidate
                for candidate in candidates
                if self._screen(candidate, lambda c=candidate: covers(c))
            ]
        referenced = {
            column
            for atom in atoms(logical.predicate)
            for column in atom.columns()
        }
        return [
            candidate
            for candidate in candidates
            if self._screen(
                candidate,
                lambda c=candidate: any(
                    c.column_bounds(column) for column in referenced
                ),
            )
        ]

    # ------------------------------------------------------------------
    # integrity screening (quarantine + heap fallback)
    # ------------------------------------------------------------------

    def _screen(self, candidate: SmaSet, check) -> bool:
        """Run *check*, quarantining any SMA that fails verification.

        Retries after each quarantine so the candidate's surviving
        definitions still get their chance; returns False when the check
        cannot succeed (the planner then plans without this set).
        """
        for _ in range(len(candidate.definitions) + 1):
            try:
                return bool(check())
            except SmaIntegrityError as exc:
                if not self._note_quarantine(candidate, exc):
                    return False
        return False

    def _grade_candidate(
        self, candidate: SmaSet, logical: LogicalPlan
    ) -> BucketPartitioning | None:
        """Grade one candidate, quarantining corrupt selection SMAs.

        Returns None when quarantines left the candidate unable to serve
        the query (aggregate coverage lost) — the caller falls back to
        the scan path, which is always enumerated.
        """
        for _ in range(len(candidate.definitions) + 1):
            try:
                # The grade span is io-carrying: grading really reads the
                # selection SMA-files, and nothing else during planning
                # charges the window, so this leaf accounts all plan I/O.
                with self.tracer.span(
                    "grade",
                    stats=self.catalog.pool.stats,
                    attrs={"sma_set": candidate.name},
                ) as grade_span:
                    partitioning = candidate.partition(logical.predicate)
                    grade_span.annotate(
                        qualifying=partitioning.num_qualifying,
                        ambivalent=partitioning.num_ambivalent,
                        disqualifying=partitioning.num_disqualifying,
                    )
                    return partitioning
            except SmaIntegrityError as exc:
                if not self._note_quarantine(candidate, exc):
                    raise
                if logical.kind == "aggregate" and not sma_covers(
                    candidate, logical.aggregates, logical.group_by
                ):
                    return None
        return None

    def _note_quarantine(self, candidate: SmaSet, exc: SmaIntegrityError) -> bool:
        """Quarantine the definition owning the failed file; False if the
        error cannot be mapped to a (not yet quarantined) definition."""
        path = getattr(exc, "path", None)
        name = candidate.definition_for_path(path)
        if name is None or candidate.is_quarantined(name):
            return False
        candidate.quarantine(name, str(exc))
        self.catalog.integrity.record_quarantine(
            table=candidate.table.name,
            sma_set=candidate.name,
            definition=name,
            path=path,
            reason=str(exc),
        )
        return True

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(
        self,
        query: AggregateQuery | ScanQuery | DmlStatement,
        *,
        mode: str = "auto",
        sma_set: str | SmaSet | None = None,
        table: Table | None = None,
    ) -> Plan:
        """Build a plan for any supported query shape.

        *mode* is ``auto`` (cost-based), ``sma`` (force an SMA plan —
        raises if impossible; the cheapest covering set still wins) or
        ``scan`` (force the sequential plan).  DML statements route to
        :meth:`plan_dml` regardless of mode.

        *table* substitutes the table the plan binds against — the
        session passes the pinned :class:`~repro.storage.table.TableView`
        here so the whole plan (grading clip, costing, operators) reads
        one epoch-consistent snapshot.
        """
        if isinstance(
            query, (InsertStatement, UpdateStatement, DeleteStatement)
        ):
            return self.plan_dml(query)
        if mode not in _MODES:
            raise PlanningError(f"unknown planning mode {mode!r}")
        if not isinstance(query, (AggregateQuery, ScanQuery)):
            raise PlanningError(f"cannot plan {type(query).__name__}")
        if table is None:
            table = self.catalog.table(query.table)
        elif table.name != query.table:
            raise PlanningError(
                f"pinned view of {table.name!r} cannot serve a query on "
                f"{query.table!r}"
            )
        with self.tracer.span(
            "logical_rewrite", attrs={"table": table.name}
        ):
            logical = build_logical(query, table.schema)

        paths = self._enumerate(table, logical, mode, sma_set)
        chosen = self._choose(table, logical, mode, paths)
        return self._finish(table, logical, mode, chosen, paths)

    def plan_dml(self, statement: DmlStatement) -> Plan:
        """Build the (single-alternative) plan of one DML statement."""
        table = self.catalog.table(statement.table)
        with self.tracer.span(
            "logical_rewrite", attrs={"table": table.name}
        ):
            logical = build_logical_dml(statement, table.schema)
        physical = bind_dml_plan(self.catalog, logical, tracer=self.tracer)
        info = PlanInfo(
            strategy=logical.op,
            reason="write path: intent-logged, SMA-maintained",
            table=table.name,
        )
        explanation = Explanation(
            query=logical.render(),
            mode="dml",
            info=info,
            tree=physical.root,
            alternatives=(),
            grading=None,
        )
        return Plan(info=info, physical=physical, explanation=explanation)

    def plan_aggregate(
        self,
        query: AggregateQuery,
        *,
        mode: str = "auto",
        sma_set: str | SmaSet | None = None,
    ) -> Plan:
        """Build a plan for an aggregation query (see :meth:`plan`)."""
        return self.plan(query, mode=mode, sma_set=sma_set)

    def plan_scan(
        self,
        query: ScanQuery,
        *,
        mode: str = "auto",
        sma_set: str | SmaSet | None = None,
    ) -> Plan:
        """Build a plan for a tuple-returning selection (see :meth:`plan`)."""
        return self.plan(query, mode=mode, sma_set=sma_set)

    # ------------------------------------------------------------------
    # choosing and finishing
    # ------------------------------------------------------------------

    def _choose(
        self,
        table: Table,
        logical: LogicalPlan,
        mode: str,
        paths: list[AccessPath],
    ) -> AccessPath:
        sma_paths = [path for path in paths if path.sma_set is not None]
        scan_paths = [path for path in paths if path.sma_set is None]

        if mode == "scan":
            chosen = scan_paths[0]
            chosen.note = "forced by caller"
            chosen.chosen = True
            return chosen
        if mode == "sma":
            if not sma_paths:
                detail = (
                    "covers this query's aggregates"
                    if logical.kind == "aggregate"
                    else "can grade this predicate"
                )
                raise PlanningError(
                    f"no SMA set on {table.name!r} {detail}"
                )
            chosen = min(sma_paths, key=lambda path: path.est_seconds)
            chosen.note = (
                "forced by caller"
                if len(sma_paths) == 1
                else "forced by caller; cheapest covering set"
            )
            chosen.chosen = True
            return chosen

        # auto: global minimum; ties go to the SMA path (matching the
        # historical `scan < sma` strict comparison).
        if not sma_paths:
            chosen = scan_paths[0]
            chosen.note = (
                "no covering SMA set"
                if logical.kind == "aggregate"
                else "no applicable selection SMA"
            )
            chosen.chosen = True
            return chosen
        best_sma = min(sma_paths, key=lambda path: path.est_seconds)
        scan = scan_paths[0]
        if scan.est_seconds < best_sma.est_seconds:
            scan.note = "cost-based: scan is cheaper"
            scan.chosen = True
            return scan
        best_sma.note = (
            "cost-based"
            if len(sma_paths) == 1
            else f"cost-based: cheapest of {len(sma_paths)} covering sets"
        )
        best_sma.chosen = True
        return best_sma

    def _finish(
        self,
        table: Table,
        logical: LogicalPlan,
        mode: str,
        chosen: AccessPath,
        paths: list[AccessPath],
    ) -> Plan:
        # PlanInfo stays symmetric across strategies: whenever any SMA
        # candidate was graded, both estimates and its grading fractions
        # are reported — also on the scan side of a cost-based loss.
        sma_paths = [path for path in paths if path.sma_set is not None]
        best_sma = (
            min(sma_paths, key=lambda path: path.est_seconds)
            if sma_paths
            else None
        )
        reference = chosen if chosen.sma_set is not None else best_sma
        info = PlanInfo(
            strategy=chosen.strategy,
            reason=chosen.note,
            table=table.name,
            sma_set_name=reference.sma_set_name if reference else None,
            fraction_ambivalent=(
                reference.grading.fraction_ambivalent if reference else None
            ),
            fraction_qualifying=(
                reference.grading.fraction_qualifying if reference else None
            ),
            fraction_disqualifying=(
                reference.grading.fraction_disqualifying if reference else None
            ),
            est_sma_seconds=reference.est_seconds if reference else None,
            est_scan_seconds=(
                next(
                    (
                        path.est_seconds
                        for path in paths
                        if path.sma_set is None
                    ),
                    self._est_scan(table) if reference else None,
                )
            ),
        )
        if reference is None:
            info.est_scan_seconds = None

        if logical.kind == "aggregate":
            physical = bind_aggregate_plan(
                table,
                logical,
                chosen.strategy,
                self.parallelism,
                sma_set=chosen.sma_set,
                partitioning=chosen.partitioning,
                tracer=self.tracer,
            )
        else:
            physical = bind_scan_plan(
                table,
                logical,
                chosen.strategy,
                self.parallelism,
                sma_set=chosen.sma_set,
                partitioning=chosen.partitioning,
                tracer=self.tracer,
            )

        ordered = sorted(
            paths,
            key=lambda path: (
                path.est_seconds if path.est_seconds is not None else float("inf")
            ),
        )
        explanation = Explanation(
            query=logical.render(),
            mode=mode,
            info=info,
            tree=physical.root,
            alternatives=tuple(ordered),
            # When a scan wins the cost race, the grading that informed
            # the decision (of the best rejected SMA path) still shows.
            grading=chosen.grading or (reference.grading if reference else None),
        )
        return Plan(info=info, physical=physical, explanation=explanation)
