"""Plan generation in the presence of SMAs (Section 3).

The planner decides, per query, between the plain sequential plan and
the SMA plan.  Grading is cheap (it touches only SMA-files, ~0.1 % of
the data), so the planner *actually grades* and then compares the two
closed-form costs from the disk model:

* ``cost_scan``: read every page sequentially, charge every tuple;
* ``cost_sma``: read all needed SMA-files sequentially, charge every SMA
  entry, then fetch only the buckets the operator will touch (ambivalent
  ones for SMA_GAggr; qualifying + ambivalent for SMA_Scan), paying a
  skip charge for every gap in the fetch sequence.

The paper's ≈ 25 % break-even of Figure 5 is *not* hard-coded anywhere;
it emerges from these two formulas.  When the planner mis-predicts (it
cannot, much — grading is exact), the worst case is the paper's own
observation: the discarded grading work costs < 2 % of the scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregates import AggregateSpec
from repro.core.partition import BucketPartitioning
from repro.core.sma_set import SmaSet
from repro.errors import PlanningError
from repro.lang.predicate import Predicate, atoms
from repro.query.gaggr import GAggr, ParallelGAggr
from repro.query.iterators import Filter, MorselScan, Project, SeqScan, SmaScan
from repro.query.parallel import ScanParallelism, resolve_parallelism
from repro.query.query import AggregateQuery, ScanQuery
from repro.query.sma_gaggr import SmaGAggr, sma_covers, sma_requirements
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel, PAPER_DISK
from repro.storage.table import Table


@dataclass
class PlanInfo:
    """What the planner decided and why (returned with every result)."""

    strategy: str  # "sma_gaggr" | "gaggr" | "sma_scan" | "seq_scan"
    reason: str
    sma_set_name: str | None = None
    fraction_ambivalent: float | None = None
    est_sma_seconds: float | None = None
    est_scan_seconds: float | None = None

    def __str__(self) -> str:
        lines = [f"strategy: {self.strategy} ({self.reason})"]
        if self.sma_set_name is not None:
            lines.append(f"sma set: {self.sma_set_name}")
        if self.fraction_ambivalent is not None:
            lines.append(f"ambivalent buckets: {self.fraction_ambivalent:.1%}")
        if self.est_sma_seconds is not None and self.est_scan_seconds is not None:
            lines.append(
                f"estimated cost: sma {self.est_sma_seconds:.3f}s vs "
                f"scan {self.est_scan_seconds:.3f}s (simulated)"
            )
        return "\n".join(lines)


@dataclass
class Plan:
    """An executable plan: call :meth:`run` to produce (columns, rows)."""

    info: PlanInfo
    _runner: object  # zero-argument callable

    def run(self) -> tuple[list[str], list[tuple]]:
        return self._runner()


def fetch_io_profile(
    fetched: np.ndarray, pages_per_bucket: int
) -> tuple[int, int]:
    """Split a bucket-fetch pattern into (sequential, skip) page counts.

    Consecutive fetched buckets stream; every gap costs one skip charge
    on the first page after it.  The very first fetched bucket counts as
    a skip (the scan has to position once).
    """
    indices = np.flatnonzero(fetched)
    if len(indices) == 0:
        return 0, 0
    gaps = int((np.diff(indices) > 1).sum()) + 1  # +1 for initial positioning
    total_pages = len(indices) * pages_per_bucket
    return total_pages - gaps, gaps


class Planner:
    """Chooses and builds physical plans against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        disk_model: DiskModel = PAPER_DISK,
        parallelism: ScanParallelism | int | None = None,
    ):
        self.catalog = catalog
        self.disk_model = disk_model
        #: morsel-parallel scan config; None or workers=1 keeps every
        #: plan on the serial operators.
        self.parallelism = resolve_parallelism(parallelism)

    @property
    def _parallel(self) -> ScanParallelism | None:
        p = self.parallelism
        return p if p is not None and p.enabled else None

    # ------------------------------------------------------------------
    # candidate selection
    # ------------------------------------------------------------------

    def _candidate_sets(
        self, table: Table, sma_set: str | SmaSet | None
    ) -> list[SmaSet]:
        if isinstance(sma_set, SmaSet):
            return [sma_set]
        if isinstance(sma_set, str):
            return [self.catalog.sma_set(table.name, sma_set)]
        return self.catalog.sma_sets(table.name)

    def _sma_pages_entries(
        self,
        sma_set: SmaSet,
        predicate: Predicate,
        aggregate_specs: list[AggregateSpec],
        group_by: tuple[str, ...],
    ) -> tuple[int, int]:
        """Pages/entries of every SMA-file the SMA plan would read."""
        files: dict[int, object] = {}

        def note(sma) -> None:
            files[id(sma)] = sma

        for atom in atoms(predicate):
            for column in atom.columns():
                sma_set.column_bounds(column, note)
                # count-SMA files would also be read; approximate by the
                # bounds files (count grading is rare and tiny anyway).
        for spec in aggregate_specs:
            found = sma_set.rollup_aggregate_files(spec, group_by)
            if found:
                for sma in found[0].values():
                    note(sma)
        pages = sum(sma.num_pages for sma in files.values())
        entries = sum(sma.num_entries for sma in files.values())
        return pages, entries, len(files)

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------

    def plan_aggregate(
        self,
        query: AggregateQuery,
        *,
        mode: str = "auto",
        sma_set: str | SmaSet | None = None,
    ) -> Plan:
        """Build a plan for an aggregation query.

        *mode* is ``auto`` (cost-based), ``sma`` (force the SMA plan —
        raises if impossible) or ``scan`` (force the sequential plan).
        """
        if mode not in ("auto", "sma", "scan"):
            raise PlanningError(f"unknown planning mode {mode!r}")
        table = self.catalog.table(query.table)
        query.validate(table.schema)
        predicate = query.where.bind(table.schema)

        def scan_plan(reason: str, info_extra: dict | None = None) -> Plan:
            info = PlanInfo(strategy="gaggr", reason=reason, **(info_extra or {}))
            parallel = self._parallel
            if parallel is not None:
                operator = ParallelGAggr(
                    table, predicate, query.group_by, query.aggregates, parallel
                )
            else:
                operator = GAggr(
                    Filter(SeqScan(table), predicate),
                    query.group_by,
                    query.aggregates,
                )
            return Plan(info, operator.execute)

        if mode == "scan":
            return scan_plan("forced by caller")

        covering = [
            candidate
            for candidate in self._candidate_sets(table, sma_set)
            if sma_covers(candidate, query.aggregates, query.group_by)
        ]
        if not covering:
            if mode == "sma":
                raise PlanningError(
                    f"no SMA set on {table.name!r} covers this query's aggregates"
                )
            return scan_plan("no covering SMA set")

        chosen_set = covering[0]
        partitioning = chosen_set.partition(predicate)
        est_sma, est_scan = self._estimate_gaggr(
            table, chosen_set, predicate, query, partitioning
        )
        info = PlanInfo(
            strategy="sma_gaggr",
            reason="cost-based" if mode == "auto" else "forced by caller",
            sma_set_name=chosen_set.name,
            fraction_ambivalent=partitioning.fraction_ambivalent,
            est_sma_seconds=est_sma,
            est_scan_seconds=est_scan,
        )
        if mode == "auto" and est_scan < est_sma:
            return scan_plan(
                "cost-based: scan is cheaper",
                {
                    "sma_set_name": chosen_set.name,
                    "fraction_ambivalent": partitioning.fraction_ambivalent,
                    "est_sma_seconds": est_sma,
                    "est_scan_seconds": est_scan,
                },
            )
        operator = SmaGAggr(
            table,
            predicate,
            query.group_by,
            query.aggregates,
            chosen_set,
            partitioning=partitioning,
            parallelism=self._parallel,
        )
        return Plan(info, operator.execute)

    def _estimate_gaggr(
        self,
        table: Table,
        sma_set: SmaSet,
        predicate: Predicate,
        query: AggregateQuery,
        partitioning: BucketPartitioning,
    ) -> tuple[float, float]:
        model = self.disk_model
        # One positioning seek to start the scan; one per SMA-file opened.
        est_scan = (
            model.scan_seconds(table.num_pages, table.num_records)
            + model.random_page_s
        )
        sma_pages, sma_entries, num_files = self._sma_pages_entries(
            sma_set,
            predicate,
            sma_requirements(query.aggregates),
            query.group_by,
        )
        ambivalent = partitioning.ambivalent
        seq_pages, skip_pages = fetch_io_profile(
            ambivalent, table.layout.pages_per_bucket
        )
        counts = np.asarray(table.heap.bucket_counts())
        fetch_tuples = int(counts[ambivalent].sum())
        est_sma = (
            model.sma_seconds(
                sma_pages, sma_entries, seq_pages, skip_pages, fetch_tuples
            )
            + num_files * model.random_page_s
        )
        return est_sma, est_scan

    # ------------------------------------------------------------------
    # scan queries
    # ------------------------------------------------------------------

    def plan_scan(
        self,
        query: ScanQuery,
        *,
        mode: str = "auto",
        sma_set: str | SmaSet | None = None,
    ) -> Plan:
        """Build a plan for a tuple-returning selection."""
        if mode not in ("auto", "sma", "scan"):
            raise PlanningError(f"unknown planning mode {mode!r}")
        table = self.catalog.table(query.table)
        query.validate(table.schema)
        predicate = query.where.bind(table.schema)

        def finish(operator) -> object:
            if query.columns:
                operator = Project(operator, query.columns)

            def runner() -> tuple[list[str], list[tuple]]:
                from repro.storage.types import python_value

                schema = operator.schema
                dtypes = [schema.dtype_of(name) for name in schema.names]
                columns = list(schema.names)
                rows = [
                    tuple(
                        python_value(dtype, value)
                        for dtype, value in zip(dtypes, record)
                    )
                    for record in operator.rows()
                ]
                return columns, rows

            return runner

        def scan_plan(reason: str) -> Plan:
            info = PlanInfo(strategy="seq_scan", reason=reason)
            parallel = self._parallel
            if parallel is not None:
                return Plan(info, finish(MorselScan(table, predicate, parallel)))
            return Plan(info, finish(Filter(SeqScan(table), predicate)))

        if mode == "scan":
            return scan_plan("forced by caller")

        candidates = self._candidate_sets(table, sma_set)
        referenced = {
            column for atom in atoms(predicate) for column in atom.columns()
        }
        usable = [
            candidate
            for candidate in candidates
            if any(candidate.column_bounds(column) for column in referenced)
        ]
        if not usable:
            if mode == "sma":
                raise PlanningError(
                    f"no SMA set on {table.name!r} can grade this predicate"
                )
            return scan_plan("no applicable selection SMA")

        chosen_set = usable[0]
        partitioning = chosen_set.partition(predicate)
        model = self.disk_model
        est_scan = (
            model.scan_seconds(table.num_pages, table.num_records)
            + model.random_page_s
        )
        fetched = ~partitioning.disqualifying
        seq_pages, skip_pages = fetch_io_profile(
            fetched, table.layout.pages_per_bucket
        )
        counts = np.asarray(table.heap.bucket_counts())
        fetch_tuples = int(counts[fetched].sum())
        sma_pages, sma_entries, num_files = self._sma_pages_entries(
            chosen_set, predicate, [], ()
        )
        est_sma = (
            model.sma_seconds(
                sma_pages, sma_entries, seq_pages, skip_pages, fetch_tuples
            )
            + num_files * model.random_page_s
        )
        info = PlanInfo(
            strategy="sma_scan",
            reason="cost-based" if mode == "auto" else "forced by caller",
            sma_set_name=chosen_set.name,
            fraction_ambivalent=partitioning.fraction_ambivalent,
            est_sma_seconds=est_sma,
            est_scan_seconds=est_scan,
        )
        if mode == "auto" and est_scan < est_sma:
            return scan_plan("cost-based: scan is cheaper")
        parallel = self._parallel
        if parallel is not None:
            operator = MorselScan(
                table, predicate, parallel, partitioning=partitioning
            )
        else:
            operator = SmaScan(
                table, predicate, chosen_set, partitioning=partitioning
            )
        return Plan(info, finish(operator))
