"""Process-based scan backend: morsels executed in worker processes.

Thread morsels (:mod:`repro.query.parallel`) keep every byte of work
under the parent's GIL, so CPU-bound bucket work (page decode, predicate
evaluation, grouping) does not actually overlap.  This module dispatches
the same morsel subplans to a persistent :class:`ProcessPoolExecutor`
whose workers re-open the catalog read-only via ``os.pread`` (each
worker holds its own :class:`~repro.storage.catalog.Catalog`, buffer
pool and fault injector), execute the shipped subplan, and return
**un-finalized** :class:`~repro.query.aggregation.AggregationState`
partials over the :mod:`repro.shard.state_serde` wire format — the same
order-preserving merge as thread morsels and shard workers, so results
stay byte-identical to the serial fold.

Task payloads are pure data: bucket lists / bucket ranges, predicates
and aggregate specs serialized with :mod:`repro.lang.serde`, and (for
SMA plans) the pre-sliced per-bucket SMA advancement entries, so workers
never re-read SMA files the parent already rolled up.

Accounting contract (see :mod:`repro.storage.stats`): every worker task
runs inside its *own* pool's ``query_context`` window and wires the
window back with the payload; the dispatcher merges worker windows into
the calling thread's window **in task order**, exactly once.  Physical
reads performed by a worker process land in that worker's cumulative
pool counters, never the parent's — the parent sees them only as the
merged per-query delta.

Worker pools are keyed by (catalog root, buffer pages, fault-injector
signature) and persist across queries; ``go_cold`` bumps a cold epoch
that makes workers drop their caches before the next task.  A crashed
worker (``BrokenProcessPool``) disposes the pool and raises
:class:`ProcPoolBrokenError`; operators catch it and fall back to the
thread backend for the query at hand.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ExecutionError, QueryCancelledError, QueryTimeoutError
from repro.lang.serde import (
    aggregate_spec_from_json,
    aggregate_spec_to_json,
    predicate_from_json,
    predicate_to_json,
)
from repro.obs.collect import graft_remote_trace
from repro.obs.trace import NO_TRACER, Tracer
from repro.shard.state_serde import (
    state_from_wire,
    state_to_wire,
    stats_from_wire,
    stats_to_wire,
)
from repro.storage.stats import IoStats

#: Spawn at least this many workers per pool, so a later query asking
#: for a few more workers does not force a full pool respawn.
MIN_PROCESSES = 4

#: Hard ceiling on worker processes per pool.
MAX_PROCESSES = 16


class ProcPoolBrokenError(ExecutionError):
    """The worker-process pool died mid-dispatch (worker crash/kill)."""


# ----------------------------------------------------------------------
# worker side (runs in the spawned process)
# ----------------------------------------------------------------------

_WORKER_CATALOG = None
_WORKER_EPOCH: int | None = None
#: Highest ingest epoch this worker has seen per table.  A task pinned
#: at a newer epoch means the parent retired DML batches after this
#: worker opened (or last refreshed) the heap: reload the counts sidecar
#: and drop stale cached pages before serving the snapshot.
_WORKER_TABLE_EPOCHS: dict[str, int] = {}


def _worker_init(root_dir: str, buffer_pages: int, fault_seed, fault_specs) -> None:
    """Process initializer: re-open the catalog read-only via ``pread``.

    The worker gets its own buffer pool (same capacity as the parent's)
    and, when the parent runs under fault injection, an injector rebuilt
    from the same (seed, specs) so simulated-device schedules apply to
    worker reads too.
    """
    global _WORKER_CATALOG
    from repro.storage.catalog import Catalog
    from repro.storage.faults import FaultInjector

    injector = None
    if fault_specs:
        injector = FaultInjector(seed=fault_seed, specs=tuple(fault_specs))
    _WORKER_CATALOG = Catalog.discover(
        root_dir,
        buffer_pages=buffer_pages,
        fault_injector=injector,
        read_only=True,
    )


def _worker_run(task: dict) -> dict:
    """Execute one shipped morsel subplan; return (payload, stats) wire."""
    global _WORKER_EPOCH
    catalog = _WORKER_CATALOG
    assert catalog is not None, "worker initializer did not run"
    epoch = task["cold_epoch"]
    if epoch != _WORKER_EPOCH:
        # The parent went cold since our last task: drop page + decode
        # caches so this task's reads hit "disk" like the parent's would.
        catalog.go_cold()
        _WORKER_EPOCH = epoch
    ctx = task.get("trace")
    tracer = span = None
    if ctx is not None:
        # Traced dispatch: open a local root span over this task's whole
        # window.  Ids/timestamps are process-local; the parent grafts
        # the exported tree (re-id + rebase) via obs.collect.
        tracer = Tracer(keep=1)
        span = tracer.begin(str(ctx.get("span_name", "scan_task")), root=True)
        span.annotate(
            kind=task["kind"],
            table=task["table"],
            pid=os.getpid(),
            remote_trace_id=ctx.get("trace_id"),
            remote_parent_span_id=ctx.get("parent_span_id"),
        )
    window = IoStats()
    started = time.perf_counter()
    with catalog.pool.query_context(window):
        payload = _execute_task(catalog, task)
    payload["stats"] = stats_to_wire(window)
    payload["wall_s"] = time.perf_counter() - started
    if span is not None:
        # The span's io IS the task window: the exported leaf delta and
        # the stats the parent merges are the same counters, so the
        # distributed reconciliation stays byte-exact.
        span.io = window.snapshot()
        tracer.finish(span)
        payload["trace"] = span.to_dict()
    return payload


def _pinned_table(catalog, table, pin):
    """Apply a shipped epoch-snapshot pin to the worker's table handle.

    The returned :class:`~repro.storage.table.TableView` bounds every
    bucket read to the parent's admission-time geometry, so a worker
    whose on-disk bytes are fresher (a concurrent batch already retired)
    still produces exactly the pinned snapshot.
    """
    if not pin:
        return table
    from repro.storage.table import TableView

    known = _WORKER_TABLE_EPOCHS.get(table.name)
    if known is None:
        known = catalog.ingest_epoch(table.name)
    epoch = int(pin["epoch"])
    if epoch > known:
        table.heap.refresh_from_disk()
    _WORKER_TABLE_EPOCHS[table.name] = max(epoch, known)
    return TableView.from_pin(table, pin)


def _task_plan(catalog, task):
    table = _pinned_table(
        catalog, catalog.table(task["table"]), task.get("pin")
    )
    predicate = predicate_from_json(task["predicate"]).bind(table.schema)
    group_by = tuple(task["group_by"])
    aggregates = tuple(
        _rebuild_aggregate(node) for node in task["aggregates"]
    )
    return table, predicate, group_by, aggregates


def _rebuild_aggregate(node: dict):
    from repro.query.query import OutputAggregate

    return OutputAggregate(node["name"], aggregate_spec_from_json(node["spec"]))


def _execute_task(catalog, task: dict) -> dict:
    kind = task["kind"]
    if kind == "gaggr":
        return _run_gaggr_task(catalog, task)
    if kind == "sma_range":
        return _run_sma_range_task(catalog, task)
    if kind == "scan":
        return _run_scan_task(catalog, task)
    if kind == "shared_gaggr":
        return _run_shared_gaggr_task(catalog, task)
    raise ExecutionError(f"unknown process-scan task kind {kind!r}")


def _run_gaggr_task(catalog, task: dict) -> dict:
    from repro.query.aggregation import AggregationState

    table, predicate, group_by, aggregates = _task_plan(catalog, task)
    stats = table.heap.pool.stats
    partial = AggregationState(table.schema, group_by, aggregates)
    for bucket_no in task["buckets"]:
        records = table.read_bucket(bucket_no)
        stats.buckets_fetched += 1
        stats.tuples_scanned += len(records)
        mask = predicate.evaluate(records)
        partial.consume_batch(records if mask.all() else records[mask])
    return {"state": state_to_wire(partial)}


def _run_shared_gaggr_task(catalog, task: dict) -> dict:
    """One shared-pass morsel: decode each bucket once, fold every consumer.

    The payload ships a *list* of consumer plans (predicate, group_by,
    aggregates) over one pinned table; the worker grades each decoded
    bucket with every consumer's predicate and returns one wire state
    per consumer, in consumer order — the parent merges them per
    consumer in morsel order, exactly like single-consumer gaggr tasks.
    """
    from repro.query.aggregation import AggregationState

    table = _pinned_table(
        catalog, catalog.table(task["table"]), task.get("pin")
    )
    stats = table.heap.pool.stats
    consumers = []
    for spec in task["consumers"]:
        predicate = predicate_from_json(spec["predicate"]).bind(table.schema)
        group_by = tuple(spec["group_by"])
        aggregates = tuple(
            _rebuild_aggregate(node) for node in spec["aggregates"]
        )
        consumers.append(
            (predicate, AggregationState(table.schema, group_by, aggregates))
        )
    for bucket_no in task["buckets"]:
        records = table.read_bucket(bucket_no)
        stats.buckets_fetched += 1
        stats.tuples_scanned += len(records)
        for predicate, partial in consumers:
            mask = predicate.evaluate(records)
            partial.consume_batch(records if mask.all() else records[mask])
    return {"states": [state_to_wire(partial) for _, partial in consumers]}


def _run_sma_range_task(catalog, task: dict) -> dict:
    from repro.query.aggregation import AggregationState
    from repro.query.sma_gaggr import _SmaEntries

    table, predicate, group_by, aggregates = _task_plan(catalog, task)
    stats = table.heap.pool.stats
    partial = AggregationState(table.schema, group_by, aggregates)
    # Entries and masks arrive pre-sliced to [lo, hi); advancement walks
    # local indexes so qualifying SMA entries and ambivalent heap tuples
    # interleave in exactly the serial bucket order.
    entries = _SmaEntries(task["entry_counts"], task["entry_aggs"])
    lo, hi = task["lo"], task["hi"]
    qualifying = task["qualifying"]
    ambivalent = task["ambivalent"]
    for i in range(hi - lo):
        if qualifying[i]:
            entries.advance(partial, i)
        elif ambivalent[i]:
            records = table.read_bucket(lo + i)
            stats.buckets_fetched += 1
            stats.tuples_scanned += len(records)
            mask = predicate.evaluate(records)
            partial.consume_batch(records[mask])
    return {"state": state_to_wire(partial)}


def _run_scan_task(catalog, task: dict) -> dict:
    table, predicate, _, _ = _task_plan(catalog, task)
    stats = table.heap.pool.stats
    out = []
    for bucket_no, qualifying in zip(task["buckets"], task["qualifying"]):
        records = table.read_bucket(bucket_no)
        stats.buckets_fetched += 1
        stats.tuples_scanned += len(records)
        if qualifying:
            out.append(records)
        else:
            mask = predicate.evaluate(records)
            out.append(records if mask.all() else records[mask])
    return {"batches": out}


# ----------------------------------------------------------------------
# task payload builders (parent side)
# ----------------------------------------------------------------------


def _plan_payload(table, predicate, group_by, aggregates) -> dict:
    return {
        "table": table.name,
        "pin": getattr(table, "pin", None),
        "predicate": predicate_to_json(predicate),
        "group_by": list(group_by),
        "aggregates": [
            {"name": a.name, "spec": aggregate_spec_to_json(a.spec)}
            for a in aggregates
        ],
    }


def gaggr_task(table, predicate, group_by, aggregates, buckets) -> dict:
    payload = _plan_payload(table, predicate, group_by, aggregates)
    payload.update(kind="gaggr", buckets=[int(b) for b in buckets])
    return payload


def shared_gaggr_task(table, consumers, buckets) -> dict:
    """Ship one shared-pass morsel: all consumers' plans + a bucket list.

    *consumers* is the dispatcher's sealed list; each carries a bound
    ``predicate`` and its logical ``query`` (group_by / aggregates).
    """
    return {
        "kind": "shared_gaggr",
        "table": table.name,
        "pin": getattr(table, "pin", None),
        "consumers": [
            {
                "predicate": predicate_to_json(consumer.predicate),
                "group_by": list(consumer.query.group_by),
                "aggregates": [
                    {"name": a.name, "spec": aggregate_spec_to_json(a.spec)}
                    for a in consumer.query.aggregates
                ],
            }
            for consumer in consumers
        ],
        "buckets": [int(b) for b in buckets],
    }


def sma_range_task(
    table, predicate, group_by, aggregates, lo, hi,
    qualifying, ambivalent, entries,
) -> dict:
    """Ship buckets [lo, hi) with masks and SMA entries sliced to the range."""
    payload = _plan_payload(table, predicate, group_by, aggregates)
    payload.update(
        kind="sma_range",
        lo=int(lo),
        hi=int(hi),
        qualifying=qualifying[lo:hi].copy(),
        ambivalent=ambivalent[lo:hi].copy(),
        entry_counts=[
            (key, values[lo:hi].copy()) for key, values in entries.counts
        ],
        entry_aggs=[
            (
                index,
                kind,
                key,
                values[lo:hi].copy(),
                None if valid is None else valid[lo:hi].copy(),
            )
            for index, kind, key, values, valid in entries.aggs
        ],
    )
    return payload


def scan_task(table, predicate, buckets, qualifying) -> dict:
    payload = _plan_payload(table, predicate, (), ())
    payload.update(
        kind="scan",
        buckets=[int(b) for b in buckets],
        qualifying=[bool(q) for q in qualifying],
    )
    return payload


# ----------------------------------------------------------------------
# pool registry (parent side)
# ----------------------------------------------------------------------


class ProcScanPool:
    """One persistent worker-process pool for one (catalog, faults) pair."""

    def __init__(self, key, root_dir, buffer_pages, fault_seed, fault_specs):
        self.key = key
        self.root_dir = root_dir
        self.buffer_pages = buffer_pages
        self.fault_seed = fault_seed
        self.fault_specs = fault_specs
        self.cold_epoch = 0
        self.tasks_dispatched = 0
        self._executor: ProcessPoolExecutor | None = None
        self._max_workers = 0
        self._lock = threading.Lock()

    def _ensure(self, workers: int) -> ProcessPoolExecutor:
        size = min(max(workers, MIN_PROCESSES), MAX_PROCESSES)
        with self._lock:
            if self._executor is None or self._max_workers < size:
                if self._executor is not None:
                    self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = ProcessPoolExecutor(
                    max_workers=size,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_worker_init,
                    initargs=(
                        self.root_dir,
                        self.buffer_pages,
                        self.fault_seed,
                        self.fault_specs,
                    ),
                )
                self._max_workers = size
            return self._executor

    @property
    def spawned_workers(self) -> int:
        return self._max_workers

    def dispatch(
        self,
        tasks: list[dict],
        workers: int,
        *,
        cancel_event=None,
        deadline=None,
    ) -> list[dict]:
        """Run *tasks* with at most *workers* in flight; results in order.

        Worker crashes raise :class:`ProcPoolBrokenError` (after the pool
        is disposed, so the next query respawns it); task-level errors
        re-raise in task order after every submitted task settles —
        matching :func:`repro.query.parallel.run_morsels` semantics.
        """
        executor = self._ensure(workers)
        for task in tasks:
            task["cold_epoch"] = self.cold_epoch
        results: list[dict | None] = [None] * len(tasks)
        errors: list[BaseException | None] = [None] * len(tasks)
        pending: dict = {}
        next_index = 0

        def submit_next() -> None:
            nonlocal next_index
            if next_index < len(tasks):
                future = executor.submit(_worker_run, tasks[next_index])
                pending[future] = next_index
                next_index += 1

        try:
            for _ in range(min(max(workers, 1), len(tasks))):
                submit_next()
            while pending:
                if cancel_event is not None and cancel_event.is_set():
                    for future in pending:
                        future.cancel()
                    raise QueryCancelledError(
                        "query cancelled during process scan"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    for future in pending:
                        future.cancel()
                    raise QueryTimeoutError(
                        "query deadline passed during process scan"
                    )
                done, _ = wait(pending, timeout=0.25, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        raise
                    except BaseException as exc:  # noqa: BLE001 - reordered below
                        errors[index] = exc
                    else:
                        self.tasks_dispatched += 1
                    submit_next()
        except BrokenProcessPool as exc:
            # Submission and result retrieval can both surface a dead
            # worker; either way the executor is unusable — dispose it so
            # the next query respawns, and let the operator fall back.
            self.dispose()
            raise ProcPoolBrokenError(
                "scan worker process died; falling back to threads"
            ) from exc
        for error in errors:
            if error is not None:
                raise error
        return [result for result in results if result is not None]

    def go_cold(self) -> None:
        """Make workers drop page/decode caches before their next task."""
        self.cold_epoch += 1

    def dispose(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            self._max_workers = 0
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        with _REGISTRY_LOCK:
            _POOLS.pop(self.key, None)


_POOLS: dict[tuple, ProcScanPool] = {}
_REGISTRY_LOCK = threading.Lock()
_FALLBACKS = 0


def _injector_signature(injector) -> tuple | None:
    if injector is None:
        return None
    return (injector.seed, tuple(injector.specs))


def get_pool(root_dir: str, buffer_pages: int, injector=None) -> ProcScanPool:
    """The persistent pool for a catalog root (created on first use)."""
    root = os.path.abspath(root_dir)
    key = (root, int(buffer_pages), _injector_signature(injector))
    with _REGISTRY_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            seed = injector.seed if injector is not None else 0
            specs = tuple(injector.specs) if injector is not None else ()
            pool = ProcScanPool(key, root, int(buffer_pages), seed, specs)
            _POOLS[key] = pool
        return pool


def go_cold(root_dir: str) -> None:
    """Advance the cold epoch of every pool attached to *root_dir*."""
    root = os.path.abspath(root_dir)
    with _REGISTRY_LOCK:
        pools = [pool for key, pool in _POOLS.items() if key[0] == root]
    for pool in pools:
        pool.go_cold()


def dispose_pools(root_dir: str) -> None:
    """Dispose every pool attached to *root_dir* (catalog teardown)."""
    root = os.path.abspath(root_dir)
    with _REGISTRY_LOCK:
        pools = [pool for key, pool in _POOLS.items() if key[0] == root]
    for pool in pools:
        pool.dispose()


def note_fallback() -> None:
    """Record one process → thread backend fallback (worker crash)."""
    global _FALLBACKS
    with _REGISTRY_LOCK:
        _FALLBACKS += 1


def pool_gauges(root_dir: str | None = None) -> dict:
    """Live worker-pool gauges for /metrics and the snapshot endpoint."""
    root = os.path.abspath(root_dir) if root_dir is not None else None
    with _REGISTRY_LOCK:
        pools = [
            pool
            for key, pool in _POOLS.items()
            if root is None or key[0] == root
        ]
        fallbacks = _FALLBACKS
    return {
        "pools": len(pools),
        "workers_spawned": sum(pool.spawned_workers for pool in pools),
        "tasks_dispatched": sum(pool.tasks_dispatched for pool in pools),
        "fallbacks": fallbacks,
    }


def shutdown_pools() -> None:
    """Dispose every pool (atexit / test teardown)."""
    with _REGISTRY_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        with pool._lock:
            executor, pool._executor = pool._executor, None
            pool._max_workers = 0
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# operator-facing dispatcher
# ----------------------------------------------------------------------


def run_process_morsels(
    table,
    payloads: list[dict],
    workers: int,
    *,
    tracer=NO_TRACER,
    span_name: str = "scan_morsel",
) -> list[dict]:
    """Dispatch morsel payloads; merge worker stats into the caller's window.

    Returns worker result dicts in task order.  Each worker's IoStats
    delta is merged into the calling thread's per-query window exactly
    once, in task order, and — under an enabled tracer — exposed as one
    io-carrying ``span_name`` span per morsel so PR 4's leaf-sum
    reconciliation stays exact.  The dispatcher itself must never run
    inside an io-carrying span (that would double-count the merge).

    Raises :class:`ProcPoolBrokenError` when the pool died; callers
    catch it, call :func:`note_fallback` and re-run on threads.
    """
    pool = table.heap.pool
    # Workers attach to the *on-disk* heap via pread: persist the data
    # handle and metadata sidecars first, so a freshly-loaded table is
    # visible to them.  A no-op-sized write when the heap is clean.
    table.heap.flush()
    root_dir = os.path.dirname(os.path.abspath(table.heap.path))
    proc = get_pool(root_dir, pool.capacity_pages, pool.fault_injector)
    cancel_event, deadline = pool.binding_controls()
    parent_span = tracer.current() if tracer.enabled else None
    if parent_span is not None:
        # Traced dispatch: ship trace context so each worker opens its
        # task span as a child of this query instead of a fresh root.
        ctx = {
            "trace_id": parent_span.trace_id,
            "parent_span_id": parent_span.span_id,
            "span_name": span_name,
        }
        for payload in payloads:
            payload["trace"] = ctx
    with tracer.span(
        "process_dispatch",
        attrs={"tasks": len(payloads), "workers": workers, "backend": "process"},
    ) as dispatch_span:
        wire_results = proc.dispatch(
            payloads, workers, cancel_event=cancel_event, deadline=deadline
        )
    parent = pool.stats
    for index, result in enumerate(wire_results):
        worker_stats = stats_from_wire(result["stats"])
        if parent_span is not None:
            remote = result.get("trace")
            if remote is not None:
                # The worker's exported span carries the task window as
                # its io delta; graft it (re-id, rebase into the dispatch
                # interval) and merge the same counters into the caller's
                # window — the grafted leaf and the merge agree exactly.
                graft_remote_trace(
                    tracer,
                    parent_span,
                    remote,
                    anchor=dispatch_span,
                    name=span_name,
                    attrs={
                        "morsel": index,
                        "backend": "process",
                        "worker_wall_s": result.get("wall_s"),
                    },
                )
                parent.merge(worker_stats)
                continue
            window = IoStats()
            with tracer.span(
                span_name,
                parent=parent_span,
                stats=window,
                attrs={
                    "morsel": index,
                    "backend": "process",
                    "worker_wall_s": result.get("wall_s"),
                },
            ):
                window.merge(worker_stats)
            parent.merge(window)
        else:
            parent.merge(worker_stats)
    return wire_results


def partial_from_wire(node: dict, aggregates, group_by):
    """Rebuild a worker's partial AggregationState for the ordered merge.

    The wire round-trip reconstructs aggregate specs structurally equal
    to the parent's (frozen dataclasses), but we install the parent's
    own tuples so ``AggregationState.merge`` compares identical objects.
    """
    partial = state_from_wire(node)
    if tuple(partial.group_by) != tuple(group_by):
        raise ExecutionError("process worker returned mismatched group_by")
    if partial.aggregates != tuple(aggregates):
        raise ExecutionError("process worker returned mismatched aggregates")
    partial.aggregates = tuple(aggregates)
    return partial
