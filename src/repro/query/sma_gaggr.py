"""SMA_GAggr — the operator of Figure 7.

Computes a grouping-aggregation query using two kinds of SMAs:

* *selection SMAs* grade every bucket against the predicate (through
  :meth:`SmaSet.partition`, Section 3.1);
* *aggregate SMAs* supply ready-made per-bucket per-group aggregate
  values, so qualifying buckets never touch the base relation — only
  ambivalent buckets are fetched and their tuples inspected.

The scan of the relation's ambivalent buckets proceeds in bucket order,
"in sync" with the (fully sequentially read) SMA-files, exactly as
Section 2.3 describes.  Averages are derived as sum/count in the final
phase.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import AggregateKind, AggregateSpec, count_star
from repro.core.partition import BucketPartitioning
from repro.core.sma_set import SmaSet
from repro.errors import PlanningError
from repro.lang.predicate import Predicate
from repro.obs.trace import NO_TRACER
from repro.query.aggregation import AggregationState
from repro.query.parallel import ScanParallelism, make_morsels, run_morsels
from repro.query.query import OutputAggregate, QueryRows
from repro.storage.table import Table


def sma_requirements(
    aggregates: tuple[OutputAggregate, ...],
) -> list[AggregateSpec]:
    """The materialized specs SMA_GAggr needs for a set of query aggregates.

    ``avg(e)`` requires ``sum(e)``; every query additionally requires
    ``count(*)`` (group presence + average denominators).
    """
    required: list[AggregateSpec] = [count_star()]
    for aggregate in aggregates:
        spec = aggregate.spec
        if spec.kind is AggregateKind.AVG:
            required.append(AggregateSpec(AggregateKind.SUM, spec.argument))
        elif spec.kind is not AggregateKind.COUNT:
            required.append(spec)
    return required


def sma_covers(
    sma_set: SmaSet,
    aggregates: tuple[OutputAggregate, ...],
    group_by: tuple[str, ...],
) -> bool:
    """True when *sma_set* materializes everything the query aggregates
    need — exactly grouped or finer (roll-up, Section 2.3)."""
    return all(
        sma_set.rollup_aggregate_files(spec, group_by) is not None
        for spec in sma_requirements(aggregates)
    )


class SmaGAggr:
    """The SMA_GAggr pipeline breaker (Figure 7)."""

    def __init__(
        self,
        table: Table,
        predicate: Predicate,
        group_by: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
        sma_set: SmaSet,
        partitioning: BucketPartitioning | None = None,
        parallelism: ScanParallelism | None = None,
        tracer=NO_TRACER,
    ):
        self.table = table
        self.predicate = predicate.bind(table.schema)
        self.group_by = group_by
        self.aggregates = aggregates
        self.sma_set = sma_set
        self._partitioning = partitioning
        self.parallelism = parallelism
        self.tracer = tracer
        if not sma_covers(sma_set, aggregates, group_by):
            raise PlanningError(
                f"SMA set {sma_set.name!r} does not materialize all "
                f"aggregates needed by this query"
            )

    @property
    def partitioning(self) -> BucketPartitioning:
        if self._partitioning is None:
            self._partitioning = self.sma_set.partition(self.predicate)
        return self._partitioning

    def collect_state(self) -> AggregationState:
        """Advance a full :class:`AggregationState` without finalizing.

        Contributions advance in strict bucket order — bucket ``b``'s
        SMA entries (qualifying) or filtered tuples (ambivalent) land
        before anything of bucket ``b+1``.  That makes the per-group
        contribution sequence a pure function of the bucket range, so
        any contiguous split of the range (morsels here, shard workers
        in :mod:`repro.shard`) merges back byte-identically.
        """
        tracer = self.tracer
        state = AggregationState(self.table.schema, self.group_by, self.aggregates)
        partitioning = self.partitioning
        stats = self.table.heap.pool.stats

        # Phase: read every aggregate SMA-file exactly once into the
        # per-bucket advancement table.  The span also covers the
        # disqualifying-skip charge, so the operator's io-carrying spans
        # jointly cover its whole window.
        with tracer.span(
            "sma_rollup",
            stats=stats,
            attrs={
                "qualifying": partitioning.num_qualifying,
                "disqualifying": partitioning.num_disqualifying,
            },
        ):
            entries = (
                self._load_sma_entries()
                if partitioning.qualifying.any()
                else _SmaEntries([], [])
            )
            stats.buckets_skipped += partitioning.num_disqualifying

        # Phase: walk buckets in physical order — qualifying buckets
        # advance from the SMA entries, ambivalent buckets are fetched,
        # filtered and consumed.  Only ambivalent buckets cost heap I/O,
        # so with parallelism enabled the bucket range splits into
        # contiguous sub-ranges balanced by ambivalent-bucket count;
        # partials merge in range order.
        ambivalent = [int(b) for b in np.flatnonzero(partitioning.ambivalent)]
        if (
            self.parallelism is not None
            and self.parallelism.enabled
            and len(ambivalent) > 1
        ):
            chunks = make_morsels(ambivalent, self.parallelism.morsel_buckets)
            ranges: list[tuple[int, int]] = []
            start = 0
            for chunk in chunks:
                ranges.append((start, chunk[-1] + 1))
                start = chunk[-1] + 1
            if start < self.table.num_buckets:
                ranges.append((start, self.table.num_buckets))
            partials = None
            if self.parallelism.use_processes and len(ranges) > 1:
                partials = self._process_partials(ranges, entries, partitioning)
            if partials is None:
                tasks = [
                    self._range_task(lo, hi, entries) for lo, hi in ranges
                ]
                pool = self.table.heap.pool
                partials = run_morsels(
                    pool,
                    tasks,
                    self.parallelism.workers,
                    tracer=tracer,
                    span_name="ambivalent_fetch",
                )
            with tracer.span("merge", attrs={"partials": len(partials)}):
                for partial in partials:
                    state.merge(partial)
        else:
            with tracer.span(
                "ambivalent_fetch",
                stats=stats,
                attrs={"buckets": len(ambivalent), "mode": "serial"},
            ):
                self._advance_range(state, 0, self.table.num_buckets, entries)

        return state

    def execute(self) -> QueryRows:
        """Compute the full result (the operator's init phase).

        Post-processing (averages) happens inside ``finalize()``.
        """
        return self.collect_state().finalize()

    def _process_partials(self, ranges, entries, partitioning):
        """Range partials via the worker-process pool (None = fall back).

        Each task ships its bucket range with the partitioning masks and
        SMA advancement entries pre-sliced to the range, so the worker
        interleaves qualifying SMA entries and ambivalent heap tuples in
        exactly the serial bucket order without re-reading SMA files.
        """
        from repro.query import procpool

        payloads = [
            procpool.sma_range_task(
                self.table, self.predicate, self.group_by, self.aggregates,
                lo, hi, partitioning.qualifying, partitioning.ambivalent,
                entries,
            )
            for lo, hi in ranges
        ]
        try:
            results = procpool.run_process_morsels(
                self.table,
                payloads,
                self.parallelism.workers,
                tracer=self.tracer,
                span_name="ambivalent_fetch",
            )
        except procpool.ProcPoolBrokenError:
            procpool.note_fallback()
            return None
        return [
            procpool.partial_from_wire(r["state"], self.aggregates, self.group_by)
            for r in results
        ]

    def _range_task(self, lo: int, hi: int, entries: "_SmaEntries"):
        def task() -> AggregationState:
            partial = AggregationState(
                self.table.schema, self.group_by, self.aggregates
            )
            self._advance_range(partial, lo, hi, entries)
            return partial

        return task

    def _advance_range(
        self,
        state: AggregationState,
        lo: int,
        hi: int,
        entries: "_SmaEntries",
    ) -> None:
        """Advance *state* over buckets ``[lo, hi)`` in bucket order."""
        stats = self.table.heap.pool.stats  # caller's (or worker's) window
        qualifying = self.partitioning.qualifying
        ambivalent = self.partitioning.ambivalent
        for bucket_no in range(lo, hi):
            if qualifying[bucket_no]:
                entries.advance(state, bucket_no)
            elif ambivalent[bucket_no]:
                records = self.table.read_bucket(bucket_no)
                stats.buckets_fetched += 1
                stats.tuples_scanned += len(records)
                mask = self.predicate.evaluate(records)
                state.consume_batch(records[mask])

    def _load_sma_entries(self) -> "_SmaEntries":
        """Read every needed SMA-file once into per-bucket value arrays."""
        value_cache: dict[int, np.ndarray] = {}
        valid_cache: dict[int, np.ndarray | None] = {}

        def read(sma) -> tuple[np.ndarray, np.ndarray | None]:
            if id(sma) not in value_cache:
                value_cache[id(sma)] = sma.values()
                valid_cache[id(sma)] = sma.valid_mask()
            return value_cache[id(sma)], valid_cache[id(sma)]

        found = self.sma_set.rollup_aggregate_files(count_star(), self.group_by)
        assert found is not None  # guaranteed by sma_covers
        count_files, projection = found
        counts = []
        for key, sma in count_files.items():
            values, _ = read(sma)
            counts.append(
                (self.sma_set.project_group_key(key, projection), values)
            )

        aggs = []
        for index, aggregate in enumerate(self.aggregates):
            spec = aggregate.spec
            if spec.kind is AggregateKind.COUNT:
                continue  # served by the shared per-group count
            lookup = spec
            if spec.kind is AggregateKind.AVG:
                lookup = AggregateSpec(AggregateKind.SUM, spec.argument)
            found = self.sma_set.rollup_aggregate_files(lookup, self.group_by)
            assert found is not None  # guaranteed by sma_covers
            files, projection = found
            for key, sma in files.items():
                values, valid = read(sma)
                coarse = self.sma_set.project_group_key(key, projection)
                aggs.append((index, lookup.kind, coarse, values, valid))
        return _SmaEntries(counts, aggs)


class _SmaEntries:
    """Per-bucket advancement table for qualifying buckets.

    ``counts`` holds ``(group_key, per-bucket counts)`` pairs; ``aggs``
    holds ``(output index, kind, group_key, values, valid)`` tuples.
    :meth:`advance` applies one bucket's entries — per-bucket
    granularity keeps contributions bit-identical to a heap scan of the
    same (fully qualifying) bucket, whatever strategy other shards or
    morsels pick.
    """

    __slots__ = ("counts", "aggs")

    def __init__(self, counts: list, aggs: list):
        self.counts = counts
        self.aggs = aggs

    def advance(self, state: AggregationState, bucket_no: int) -> None:
        for key, counts in self.counts:
            count = counts[bucket_no]
            if count:
                state.advance_count(key, int(count))
        for index, kind, key, values, valid in self.aggs:
            if valid is not None and not valid[bucket_no]:
                continue
            value = values[bucket_no]
            if kind is AggregateKind.SUM:
                state.advance_sum(key, index, value)
            elif kind is AggregateKind.MIN:
                state.advance_min(key, index, value)
            elif kind is AggregateKind.MAX:
                state.advance_max(key, index, value)
