"""SMA_GAggr — the operator of Figure 7.

Computes a grouping-aggregation query using two kinds of SMAs:

* *selection SMAs* grade every bucket against the predicate (through
  :meth:`SmaSet.partition`, Section 3.1);
* *aggregate SMAs* supply ready-made per-bucket per-group aggregate
  values, so qualifying buckets never touch the base relation — only
  ambivalent buckets are fetched and their tuples inspected.

The scan of the relation's ambivalent buckets proceeds in bucket order,
"in sync" with the (fully sequentially read) SMA-files, exactly as
Section 2.3 describes.  Averages are derived as sum/count in the final
phase.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import AggregateKind, AggregateSpec, count_star
from repro.core.partition import BucketPartitioning
from repro.core.sma_set import SmaSet
from repro.errors import PlanningError
from repro.lang.predicate import Predicate
from repro.obs.trace import NO_TRACER
from repro.query.aggregation import AggregationState
from repro.query.parallel import ScanParallelism, make_morsels, run_morsels
from repro.query.query import OutputAggregate, QueryRows
from repro.storage.table import Table


def sma_requirements(
    aggregates: tuple[OutputAggregate, ...],
) -> list[AggregateSpec]:
    """The materialized specs SMA_GAggr needs for a set of query aggregates.

    ``avg(e)`` requires ``sum(e)``; every query additionally requires
    ``count(*)`` (group presence + average denominators).
    """
    required: list[AggregateSpec] = [count_star()]
    for aggregate in aggregates:
        spec = aggregate.spec
        if spec.kind is AggregateKind.AVG:
            required.append(AggregateSpec(AggregateKind.SUM, spec.argument))
        elif spec.kind is not AggregateKind.COUNT:
            required.append(spec)
    return required


def sma_covers(
    sma_set: SmaSet,
    aggregates: tuple[OutputAggregate, ...],
    group_by: tuple[str, ...],
) -> bool:
    """True when *sma_set* materializes everything the query aggregates
    need — exactly grouped or finer (roll-up, Section 2.3)."""
    return all(
        sma_set.rollup_aggregate_files(spec, group_by) is not None
        for spec in sma_requirements(aggregates)
    )


class SmaGAggr:
    """The SMA_GAggr pipeline breaker (Figure 7)."""

    def __init__(
        self,
        table: Table,
        predicate: Predicate,
        group_by: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
        sma_set: SmaSet,
        partitioning: BucketPartitioning | None = None,
        parallelism: ScanParallelism | None = None,
        tracer=NO_TRACER,
    ):
        self.table = table
        self.predicate = predicate.bind(table.schema)
        self.group_by = group_by
        self.aggregates = aggregates
        self.sma_set = sma_set
        self._partitioning = partitioning
        self.parallelism = parallelism
        self.tracer = tracer
        if not sma_covers(sma_set, aggregates, group_by):
            raise PlanningError(
                f"SMA set {sma_set.name!r} does not materialize all "
                f"aggregates needed by this query"
            )

    @property
    def partitioning(self) -> BucketPartitioning:
        if self._partitioning is None:
            self._partitioning = self.sma_set.partition(self.predicate)
        return self._partitioning

    def execute(self) -> QueryRows:
        """Compute the full result (the operator's init phase)."""
        tracer = self.tracer
        state = AggregationState(self.table.schema, self.group_by, self.aggregates)
        partitioning = self.partitioning
        qualifying = partitioning.qualifying
        stats = self.table.heap.pool.stats

        # Phase: advance result aggregates from the aggregate SMAs for
        # every qualifying bucket.  Each SMA-file is read exactly once.
        # The span also covers the disqualifying-skip charge, so the
        # operator's io-carrying spans jointly cover its whole window.
        with tracer.span(
            "sma_rollup",
            stats=stats,
            attrs={
                "qualifying": partitioning.num_qualifying,
                "disqualifying": partitioning.num_disqualifying,
            },
        ):
            if qualifying.any():
                self._advance_from_smas(state, qualifying)
            stats.buckets_skipped += partitioning.num_disqualifying

        # Phase: ambivalent buckets — fetch, filter, group, advance.
        # Only these morsels cost heap I/O (qualifying buckets were fully
        # answered from SMA-files above), so this is the part worth
        # parallelizing; with parallelism enabled, workers fold disjoint
        # morsels into partial states merged in morsel order.
        ambivalent = [int(b) for b in np.flatnonzero(partitioning.ambivalent)]
        if (
            self.parallelism is not None
            and self.parallelism.enabled
            and len(ambivalent) > 1
        ):
            morsels = make_morsels(ambivalent, self.parallelism.morsel_buckets)
            tasks = [self._morsel_task(morsel) for morsel in morsels]
            pool = self.table.heap.pool
            partials = run_morsels(
                pool,
                tasks,
                self.parallelism.workers,
                tracer=tracer,
                span_name="ambivalent_fetch",
            )
            with tracer.span("merge", attrs={"partials": len(partials)}):
                for partial in partials:
                    state.merge(partial)
        else:
            with tracer.span(
                "ambivalent_fetch",
                stats=stats,
                attrs={"buckets": len(ambivalent), "mode": "serial"},
            ):
                for bucket_no in ambivalent:
                    records = self.table.read_bucket(bucket_no)
                    stats.buckets_fetched += 1
                    stats.tuples_scanned += len(records)
                    mask = self.predicate.evaluate(records)
                    state.consume_batch(records[mask])

        # Phase: post-processing (averages) happens inside finalize().
        return state.finalize()

    def _morsel_task(self, morsel: list[int]):
        def task() -> AggregationState:
            stats = self.table.heap.pool.stats  # worker's child window
            partial = AggregationState(
                self.table.schema, self.group_by, self.aggregates
            )
            for bucket_no in morsel:
                records = self.table.read_bucket(bucket_no)
                stats.buckets_fetched += 1
                stats.tuples_scanned += len(records)
                mask = self.predicate.evaluate(records)
                partial.consume_batch(records[mask])
            return partial

        return task

    def _advance_from_smas(
        self, state: AggregationState, qualifying: np.ndarray
    ) -> None:
        value_cache: dict[int, np.ndarray] = {}
        valid_cache: dict[int, np.ndarray | None] = {}

        def read(sma) -> tuple[np.ndarray, np.ndarray | None]:
            if id(sma) not in value_cache:
                value_cache[id(sma)] = sma.values()
                valid_cache[id(sma)] = sma.valid_mask()
            return value_cache[id(sma)], valid_cache[id(sma)]

        found = self.sma_set.rollup_aggregate_files(count_star(), self.group_by)
        assert found is not None  # guaranteed by sma_covers
        count_files, projection = found
        for key, sma in count_files.items():
            counts, _ = read(sma)
            state.advance_count(
                self.sma_set.project_group_key(key, projection),
                int(counts[qualifying].sum()),
            )

        for index, aggregate in enumerate(self.aggregates):
            spec = aggregate.spec
            if spec.kind is AggregateKind.COUNT:
                continue  # served by the shared per-group count above
            lookup = spec
            if spec.kind is AggregateKind.AVG:
                lookup = AggregateSpec(AggregateKind.SUM, spec.argument)
            found = self.sma_set.rollup_aggregate_files(lookup, self.group_by)
            assert found is not None  # guaranteed by sma_covers
            files, projection = found
            for key, sma in files.items():
                values, valid = read(sma)
                selected = qualifying if valid is None else (qualifying & valid)
                if not selected.any():
                    continue
                chosen = values[selected]
                coarse = self.sma_set.project_group_key(key, projection)
                if lookup.kind is AggregateKind.SUM:
                    state.advance_sum(coarse, index, chosen.sum())
                elif lookup.kind is AggregateKind.MIN:
                    state.advance_min(coarse, index, chosen.min())
                elif lookup.kind is AggregateKind.MAX:
                    state.advance_max(coarse, index, chosen.max())
