"""Query engine: logical/physical plan IR, SMA-aware planning, session façade."""

from repro.query.aggregation import AggregationState
from repro.query.gaggr import GAggr
from repro.query.iterators import Filter, Operator, Project, SeqScan, SmaScan
from repro.query.logical import LogicalPlan, build_logical, normalize_predicate
from repro.query.physical import PhysicalPlan, PlanNode
from repro.query.planner import (
    AccessPath,
    Explanation,
    GradingSummary,
    Plan,
    PlanInfo,
    Planner,
    fetch_io_profile,
)
from repro.query.query import (
    AggregateQuery,
    ExplainQuery,
    OutputAggregate,
    PlanRunner,
    QueryRows,
    ScanQuery,
)
from repro.query.session import QueryResult, Session
from repro.query.sma_gaggr import SmaGAggr, sma_covers, sma_requirements

__all__ = [
    "AccessPath",
    "AggregateQuery",
    "AggregationState",
    "Explanation",
    "ExplainQuery",
    "Filter",
    "GAggr",
    "GradingSummary",
    "LogicalPlan",
    "Operator",
    "OutputAggregate",
    "PhysicalPlan",
    "Plan",
    "PlanInfo",
    "PlanNode",
    "PlanRunner",
    "Planner",
    "Project",
    "QueryResult",
    "QueryRows",
    "ScanQuery",
    "SeqScan",
    "Session",
    "SmaGAggr",
    "SmaScan",
    "build_logical",
    "fetch_io_profile",
    "normalize_predicate",
    "sma_covers",
    "sma_requirements",
]
