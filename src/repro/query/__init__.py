"""Query engine: physical algebra, SMA-aware planning, session façade."""

from repro.query.aggregation import AggregationState
from repro.query.gaggr import GAggr
from repro.query.iterators import Filter, Operator, Project, SeqScan, SmaScan
from repro.query.planner import Plan, PlanInfo, Planner, fetch_io_profile
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import QueryResult, Session
from repro.query.sma_gaggr import SmaGAggr, sma_covers, sma_requirements

__all__ = [
    "AggregateQuery",
    "AggregationState",
    "Filter",
    "GAggr",
    "Operator",
    "OutputAggregate",
    "Plan",
    "PlanInfo",
    "Planner",
    "Project",
    "QueryResult",
    "ScanQuery",
    "SeqScan",
    "Session",
    "SmaGAggr",
    "SmaScan",
    "fetch_io_profile",
    "sma_covers",
    "sma_requirements",
]
