"""C3 — sharded scatter-gather serving throughput.

Not a paper experiment: the paper's SMAs live inside one storage node,
but contiguous bucket-range partitioning (``repro shard-init``) extends
the design to a scatter-gather tier — each shard owns a bucket range
plus the matching SMA-file *slices*, and the router merges partial
aggregation states in shard order, byte-identically to single-node.

This experiment measures whether that tier actually buys throughput.
The engine is pure Python, so on one box CPU work cannot scale past the
GIL — but shard workers are separate *processes*, so anything that
blocks without the GIL (real disk waits) overlaps across shards.  To
model a disk-bound warehouse node we inject a deterministic per-heap-
page read latency (PR 5's fault machinery) and keep per-worker buffer
pools small; each added shard then divides the per-query heap-wait and
the closed-loop driver overlaps the shards, so completed-queries/s
should rise monotonically with shard count.

Every shard count is also checked byte-identical against single-node
execution of the full mix before its throughput run — scaling proves
nothing if the answers drift.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.bench.harness import ExperimentResult, human_seconds
from repro.query.session import Session, assert_same_result
from repro.server.workload import WorkloadDriver, default_mix
from repro.shard.partitioner import shard_init
from repro.shard.router import (
    ShardRouter,
    launch_local_shards,
    stop_local_shards,
)
from repro.storage.catalog import Catalog
from repro.tpcd.loader import load_lineitem


def exp_shard_scaling(
    scale_factor: float = 0.002,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    clients: int = 16,
    queries_per_client: int = 1,
    heap_latency_s: float = 0.001,
    worker_buffer_pages: int = 64,
    event_log=None,
) -> ExperimentResult:
    """Closed-loop mix throughput at several shard counts, fixed clients.

    ``scale_factor`` stays deliberately small: the simulated disk wait
    (``heap_latency_s`` per physical heap page) dominates the wall time,
    so the grid measures scatter overlap, not data volume.  Shard
    workers run with one query thread each — within a shard everything
    is serial, so any speedup is attributable to the shard fan-out.
    """
    root = tempfile.mkdtemp(prefix="repro-c3-")
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    faults = f"latency:path=.heap,latency={heap_latency_s}"
    try:
        source_dir = os.path.join(root, "source")
        with Catalog(source_dir, buffer_pages=8192) as source:
            load_lineitem(
                source, scale_factor=scale_factor, clustering="sorted"
            )
            mix = default_mix("LINEITEM")
            session = Session(source)
            reference = {
                entry.name: session.execute(
                    entry.query, mode=entry.mode, sma_set=entry.sma_set
                )
                for entry in mix
            }

        for num_shards in shard_counts:
            if event_log is not None:
                event_log.emit("experiment", exp="C3", shards=num_shards)
            sharded_root = os.path.join(root, f"sharded-{num_shards}")
            shard_init(source_dir, sharded_root, num_shards)
            processes = launch_local_shards(
                sharded_root,
                workers=1,  # serial within a shard: speedup == fan-out
                queue_depth=max(32, 2 * clients),
                buffer_pages=worker_buffer_pages,
                faults=faults,
            )
            try:
                with ShardRouter(
                    [handle.endpoint for handle in processes],
                    workers=clients,
                    queue_depth=max(32, 2 * clients),
                    events=event_log,
                ) as router:
                    for entry in mix:  # C3 acceptance: answers never drift
                        ticket = router.submit(
                            entry.query, mode=entry.mode, sma_set=entry.sma_set
                        )
                        assert_same_result(
                            ticket.result(), reference[entry.name]
                        )
                    driver = WorkloadDriver(router, mix)
                    run = driver.run_closed_loop(
                        clients=clients, queries_per_client=queries_per_client
                    )
                    if run.completed != run.total:
                        raise AssertionError(
                            f"lost queries at shards={num_shards}: "
                            f"{run.completed}/{run.total}"
                        )
                    fanout = router.scoreboard.snapshot()["fanout"]
            finally:
                stop_local_shards(processes)
            latency = run.metrics["latency_s"]["overall"]
            metrics[f"qps_s{num_shards}"] = run.throughput_qps
            metrics[f"completed_s{num_shards}"] = float(run.completed)
            metrics[f"p50_s{num_shards}"] = latency["p50_s"]
            rows.append(
                (
                    num_shards,
                    run.total,
                    run.completed,
                    f"{run.throughput_qps:.1f}",
                    human_seconds(latency["p50_s"]),
                    human_seconds(latency["max_s"]),
                    int(fanout["subqueries_sent"]),
                )
            )
        base = metrics[f"qps_s{shard_counts[0]}"]
        for num_shards in shard_counts:
            metrics[f"speedup_s{num_shards}"] = (
                metrics[f"qps_s{num_shards}"] / base if base else 0.0
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return ExperimentResult(
        exp_id="C3",
        title="Sharded scatter-gather throughput (simulated disk waits)",
        headers=[
            "shards", "queries", "completed", "q/s",
            "p50", "max", "subqueries",
        ],
        rows=rows,
        paper_reference="beyond the paper: ROADMAP sharded serving tier",
        notes=[
            f"every heap page read pays a simulated {heap_latency_s * 1e3:g} ms "
            f"disk wait (fault injector, deterministic), per-worker pool "
            f"{worker_buffer_pages} pages: queries are I/O-bound",
            "one query thread per shard worker, so within a shard the mix "
            "is serial; throughput gains come from overlapping shards",
            "all answers asserted byte-identical to single-node execution "
            "before each throughput run",
        ],
        metrics=metrics,
    )
