"""C1/C2/C4 — concurrent serving over one shared buffer pool.

Not a paper experiment: the paper measures single queries, but SMAs are
the ancestor of zone maps precisely because bucket skipping makes *many
concurrent* scan-heavy queries cheap.  This experiment stands up the
:mod:`repro.server` query service on a loaded LINEITEM and replays the
standard aggregation + range-scan mix closed-loop at several worker
counts, reporting completed-queries/s, latency percentiles, buffer hit
rate and the buckets skipped by grading.

Python threads share the GIL, so wall-clock scaling with workers is
modest for this CPU-bound engine — the experiment's point is that
throughput *holds* (no lock collapse, no accounting corruption) while
admission control keeps overload graceful.
"""

from __future__ import annotations

import threading
import time

from repro.bench.harness import ExperimentResult, ScratchCatalog, human_seconds
from repro.query.session import Session
from repro.server.metrics import MetricsRegistry
from repro.server.service import QueryService
from repro.server.workload import WorkloadDriver, default_mix
from repro.tpcd.loader import load_lineitem
from repro.tpcd.queries import query1


def _tracer_for(event_log):
    """A real tracer when a trace artifact is wanted, else None (no-op)."""
    if event_log is None:
        return None
    from repro.obs import Tracer

    return Tracer()


def exp_concurrency_throughput(
    scale_factor: float = 0.005,
    worker_counts: tuple[int, ...] = (1, 4, 16),
    queries_per_client: int = 6,
    event_log=None,
    fault_injector=None,
) -> ExperimentResult:
    """Closed-loop throughput at several worker counts, shared catalog.

    ``event_log`` (an :class:`repro.obs.EventLog`) turns on tracing: every
    service run emits query events and full span trees into the JSONL
    artifact (``repro bench --trace-file``).

    ``fault_injector`` (``repro bench --faults``) attaches a
    :class:`repro.storage.faults.FaultInjector` to the shared pool for
    the whole run: queries may then fail with typed storage errors or
    retry transparently — never return wrong rows — and completed counts
    reflect the survivors.
    """
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    with ScratchCatalog() as catalog:
        load_lineitem(catalog, scale_factor=scale_factor, clustering="sorted")
        if fault_injector is not None:
            catalog.install_fault_injector(fault_injector)
        mix = default_mix("LINEITEM")
        for workers in worker_counts:
            if event_log is not None:
                event_log.emit("experiment", exp="C1", workers=workers)
            registry = MetricsRegistry()
            with QueryService(
                catalog,
                workers=workers,
                queue_depth=max(32, 2 * workers),
                metrics=registry,
                tracer=_tracer_for(event_log),
                events=event_log,
            ) as service:
                driver = WorkloadDriver(service, mix)
                result = driver.run_closed_loop(
                    clients=workers, queries_per_client=queries_per_client
                )
            snapshot = result.metrics
            latency = snapshot["latency_s"]["overall"]
            io = snapshot["io"]
            rows.append(
                (
                    workers,
                    result.total,
                    result.completed,
                    f"{result.throughput_qps:.1f}",
                    human_seconds(latency["p50_s"]),
                    human_seconds(latency["p95_s"]),
                    f"{io['buffer_hit_rate']:.1%}",
                    f"{io['bucket_skip_rate']:.1%}",
                )
            )
            metrics[f"qps_w{workers}"] = result.throughput_qps
            metrics[f"completed_w{workers}"] = float(result.completed)
            metrics[f"hit_rate_w{workers}"] = io["buffer_hit_rate"]
            metrics[f"skip_rate_w{workers}"] = io["bucket_skip_rate"]
    return ExperimentResult(
        exp_id="C1",
        title="Concurrent serving throughput (closed loop, shared pool)",
        headers=[
            "workers", "queries", "completed", "q/s",
            "p50", "p95", "hit rate", "skip rate",
        ],
        rows=rows,
        paper_reference="beyond the paper: ROADMAP serving layer",
        notes=[
            "clients = workers (each worker saturated); every query's "
            "IoStats window is isolated via BufferPool.query_context",
            "pure-Python engine under the GIL: expect throughput to hold, "
            "not to scale linearly, as workers grow",
        ],
        metrics=metrics,
    )


#: Per-page device latency of the simulated cold device, chosen between
#: the paper-calibrated DiskModel's sequential page cost (~0.36 ms) and
#: its skip cost (~2.6 ms): every *physical* page read sleeps this long.
DEVICE_LATENCY_S = 0.001


def _device_injector(latency_s: float):
    """A deterministic 'slow device': every heap page read costs
    *latency_s* of wall time (FaultInjector ``latency`` rule)."""
    from repro.storage.faults import FaultInjector, FaultSpec

    return FaultInjector(
        seed=0,
        specs=(FaultSpec(kind="latency", path=".heap", latency_s=latency_s),),
    )


def exp_scan_parallelism(
    scale_factor: float = 0.005,
    scan_worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    client_counts: tuple[int, ...] = (1, 4, 16),
    queries_per_client: int = 3,
    repeats: int = 3,
    backends: tuple[str, ...] = ("thread", "process"),
    device_latency_s: float = DEVICE_LATENCY_S,
    event_log=None,
    fault_injector=None,
) -> ExperimentResult:
    """C2 — scan parallelism across backends (ISSUE PR 2 + PR 7).

    Two measurements per (backend, scan-worker count) cell:

    * *cold-device scan speedup*: wall time of a forced full-scan
      Query 1 (``mode="scan"`` — every bucket fetched) with the pool
      dropped cold before each run and a deterministic simulated device
      (``latency`` fault, *device_latency_s* per physical page read)
      installed, best of *repeats*, relative to that backend's 1-worker
      wall.  ``time.sleep`` releases the GIL and is per-process, so
      both thread morsels and process workers genuinely overlap device
      waits — this isolates scan-overlap capability from single-core
      CPU contention (CI machines may expose just one core).
    * *service throughput grid*: closed-loop completed-queries/s of the
      standard (warm, fault-free) mix at 1/4/16 concurrent clients,
      each query fanning scans out to *scan_workers* morsels on the
      given backend.

    The headline unprefixed ``scan_speedup_sw{n}`` metrics come from the
    ``process`` backend when it is in *backends* (else the first entry);
    other backends get ``scan_speedup_{backend}_sw{n}``.  All results
    are asserted byte-identical to the serial execution.
    """
    q1 = query1()
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    headline = "process" if "process" in backends else backends[0]
    with ScratchCatalog() as catalog:
        load_lineitem(catalog, scale_factor=scale_factor, clustering="sorted")
        mix = default_mix("LINEITEM")

        serial_session = Session(catalog)
        reference = serial_session.execute(q1, mode="scan")

        # Phase 1: cold scans against the simulated device.
        catalog.install_fault_injector(_device_injector(device_latency_s))
        walls: dict[tuple[str, int], float] = {}
        for backend in backends:
            for scan_workers in scan_worker_counts:
                session = Session(
                    catalog, scan_workers=scan_workers, scan_backend=backend
                )
                best = float("inf")
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = session.execute(q1, mode="scan", cold=True)
                    best = min(best, time.perf_counter() - started)
                    if result.rows != reference.rows:  # paranoia: C2 acceptance
                        raise AssertionError(
                            f"parallel scan (backend={backend}, "
                            f"workers={scan_workers}) diverged from serial"
                        )
                walls[(backend, scan_workers)] = best

        # Phase 2: warm service grid.  Faults apply here only when the
        # caller supplies an injector (repro bench --faults); the scan
        # speedup above always uses the clean simulated device.
        catalog.install_fault_injector(fault_injector)
        for backend in backends:
            base_wall = walls[(backend, scan_worker_counts[0])]
            prefix = "" if backend == headline else f"{backend}_"
            for scan_workers in scan_worker_counts:
                qps: dict[int, float] = {}
                hit_rate = 0.0
                for clients in client_counts:
                    if event_log is not None:
                        event_log.emit(
                            "experiment", exp="C2", backend=backend,
                            scan_workers=scan_workers, clients=clients,
                        )
                    registry = MetricsRegistry()
                    with QueryService(
                        catalog,
                        workers=clients,
                        queue_depth=max(32, 2 * clients),
                        metrics=registry,
                        scan_workers=scan_workers,
                        scan_backend=backend,
                        tracer=_tracer_for(event_log),
                        events=event_log,
                    ) as service:
                        driver = WorkloadDriver(service, mix)
                        run = driver.run_closed_loop(
                            clients=clients,
                            queries_per_client=queries_per_client,
                        )
                    if fault_injector is None and run.completed != run.total:
                        raise AssertionError(
                            f"lost queries at backend={backend}, "
                            f"scan_workers={scan_workers}, clients={clients}: "
                            f"{run.completed}/{run.total}"
                        )
                    qps[clients] = run.throughput_qps
                    hit_rate = run.metrics["io"]["buffer_hit_rate"]
                    metrics[f"qps_{prefix}sw{scan_workers}_c{clients}"] = (
                        run.throughput_qps
                    )
                wall = walls[(backend, scan_workers)]
                speedup = base_wall / wall
                metrics[f"scan_wall_{prefix}sw{scan_workers}"] = wall
                metrics[f"scan_speedup_{prefix}sw{scan_workers}"] = speedup
                rows.append(
                    (
                        backend,
                        scan_workers,
                        human_seconds(wall),
                        f"{speedup:.2f}x",
                        *(f"{qps[c]:.1f}" for c in client_counts),
                        f"{hit_rate:.1%}",
                    )
                )
        from repro.query import procpool

        procpool.dispose_pools(catalog.root_dir)
    return ExperimentResult(
        exp_id="C2",
        title="Scan parallelism: backend x workers x clients "
              "(cold simulated device + warm service grid)",
        headers=[
            "backend", "scan workers", "Q1 cold scan wall", "speedup",
            *(f"q/s @{c} clients" for c in client_counts),
            "hit rate",
        ],
        rows=rows,
        paper_reference="beyond the paper: ISSUE PR 2/PR 7 (scan backends)",
        notes=[
            "Q1 forced to mode=scan, pool dropped cold per run, every "
            f"physical page read charged {DEVICE_LATENCY_S * 1e3:.1f} ms by a "
            "deterministic latency fault: the wall isolates how well each "
            "backend overlaps device waits (single-core CI safe)",
            "speedups are per backend, relative to its own 1-worker wall; "
            "unprefixed metrics = process backend when measured",
            "parallel results verified byte-identical to serial execution",
            "service grid runs warm and fault-free: the load-bearing claim "
            "there is correctness + no collapse at clients x scan_workers",
        ],
        metrics=metrics,
    )


def _read_percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def exp_ingest_concurrency(
    scale_factor: float = 0.005,
    ingest_rates: tuple[int, ...] = (0, 4, 16),
    batch_rows: int = 64,
    clients: int = 4,
    queries_per_client: int = 6,
    event_log=None,
    fault_injector=None,
) -> ExperimentResult:
    """C4 — read-latency degradation under concurrent ingest (ISSUE PR 8).

    One cell per *ingest rate* (INSERT batches/second, 0 = read-only
    baseline): a fresh LINEITEM catalog, the query service running the
    standard read mix closed-loop at *clients* clients, and — when the
    rate is non-zero — one writer thread submitting *batch_rows*-row
    INSERT batches through the service's write queue at that pace.
    Readers pin an epoch snapshot at admission, so every read cell also
    asserts correctness: after the writer stops, ``COUNT(*)`` must equal
    the base rows plus exactly the applied batches, byte-identically
    between the SMA and scan strategies.

    Read latencies are computed from the driver's per-query walls (the
    service registry's overall latency would fold DML walls in).
    """
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    for rate in ingest_rates:
        with ScratchCatalog() as catalog:
            loaded = load_lineitem(
                catalog, scale_factor=scale_factor, clustering="sorted"
            )
            if fault_injector is not None:
                catalog.install_fault_injector(fault_injector)
            table_name = loaded.table.name
            base_rows = loaded.table.num_records
            # Literal template batch cloned from the leading buckets:
            # the writer re-inserts real LINEITEM tuples, so grading and
            # SMA maintenance see representative values.  Draw from as
            # many buckets as it takes to fill *batch_rows* (one bucket
            # can hold fewer rows than a batch at small scale factors).
            template_rows: list[tuple] = []
            for bucket_no in range(loaded.table.num_buckets):
                if len(template_rows) >= batch_rows:
                    break
                template_rows.extend(
                    tuple(record)
                    for record in loaded.table.read_bucket(bucket_no).tolist()
                )
            template = tuple(template_rows[:batch_rows])
            if event_log is not None:
                event_log.emit(
                    "experiment", exp="C4", ingest_rate=rate, clients=clients
                )
            from repro.errors import ReproError
            from repro.query.query import InsertStatement

            registry = MetricsRegistry()
            counters = {"batches": 0, "errors": 0, "epoch": 0}
            stop = threading.Event()

            def ingest_loop() -> None:
                interval_s = 1.0 / rate
                while not stop.is_set():
                    started = time.perf_counter()
                    try:
                        ticket = service.submit(
                            InsertStatement(table_name, template), kind="dml"
                        )
                        result = ticket.result()
                        counters["batches"] += 1
                        counters["epoch"] = result.epoch or counters["epoch"]
                    except ReproError:
                        counters["errors"] += 1
                    remaining = interval_s - (time.perf_counter() - started)
                    if remaining > 0:
                        stop.wait(remaining)

            with QueryService(
                catalog,
                workers=clients + (1 if rate else 0),
                queue_depth=max(32, 2 * clients),
                metrics=registry,
                tracer=_tracer_for(event_log),
                events=event_log,
            ) as service:
                writer = None
                if rate:
                    writer = threading.Thread(
                        target=ingest_loop, name="c4-writer", daemon=True
                    )
                    writer.start()
                driver = WorkloadDriver(service, default_mix(table_name))
                run = driver.run_closed_loop(
                    clients=clients,
                    queries_per_client=queries_per_client,
                    keep_results=True,
                )
                if writer is not None:
                    stop.set()
                    writer.join()
            if fault_injector is None:
                if run.completed != run.total:
                    raise AssertionError(
                        f"lost reads at ingest rate {rate}: "
                        f"{run.completed}/{run.total}"
                    )
                if counters["errors"]:
                    raise AssertionError(
                        f"{counters['errors']} ingest batch(es) failed "
                        f"at rate {rate}"
                    )
            # Correctness gate: the settled table holds exactly the base
            # rows plus every applied batch, and SMA == scan to the byte.
            session = Session(catalog)
            count_sql = (
                f"SELECT COUNT(*) AS n, SUM(L_QUANTITY) AS q FROM {table_name}"
            )
            via_sma = session.sql(count_sql, mode="sma")
            via_scan = session.sql(count_sql, mode="scan")
            if repr(via_sma.rows) != repr(via_scan.rows):
                raise AssertionError(
                    f"SMA/scan divergence after ingest at rate {rate}"
                )
            expected = base_rows + counters["batches"] * len(template)
            if via_scan.rows[0][0] != expected:
                raise AssertionError(
                    f"row count {via_scan.rows[0][0]} != expected {expected} "
                    f"after {counters['batches']} batches at rate {rate}"
                )
            latencies = [
                outcome.result.wall_seconds
                for outcome in run.outcomes
                if outcome.result is not None
            ]
            p50 = _read_percentile(latencies, 0.50)
            p95 = _read_percentile(latencies, 0.95)
            ingested = counters["batches"] * len(template)
            rows.append(
                (
                    rate,
                    counters["batches"],
                    ingested,
                    counters["epoch"],
                    run.completed,
                    f"{run.throughput_qps:.1f}",
                    human_seconds(p50),
                    human_seconds(p95),
                )
            )
            metrics[f"read_p50_r{rate}_s"] = p50
            metrics[f"read_p95_r{rate}_s"] = p95
            metrics[f"read_qps_r{rate}"] = run.throughput_qps
            metrics[f"ingest_batches_r{rate}"] = float(counters["batches"])
            metrics[f"ingest_rows_r{rate}"] = float(ingested)
            metrics[f"ingest_epoch_r{rate}"] = float(counters["epoch"])
    baseline_p95 = metrics.get(f"read_p95_r{ingest_rates[0]}_s") or 0.0
    top_p95 = metrics.get(f"read_p95_r{ingest_rates[-1]}_s") or 0.0
    if baseline_p95 > 0:
        metrics["p95_degradation_ratio"] = top_p95 / baseline_p95
    return ExperimentResult(
        exp_id="C4",
        title="Mixed read/write serving: read latency vs ingest rate",
        headers=[
            "batches/s", "batches", "rows ingested", "epoch",
            "reads done", "read q/s", "read p50", "read p95",
        ],
        rows=rows,
        paper_reference="beyond the paper: ISSUE PR 8 (DML + epoch snapshots)",
        notes=[
            "writer thread submits INSERT batches through the service's "
            "write queue (serialized per table, intent-logged); readers "
            "pin a bucket-generation epoch snapshot at admission",
            "each cell re-loads a fresh catalog so the read workload "
            "is comparable across rates despite table growth",
            "correctness gated per cell: COUNT(*) equals base rows + "
            "applied batches and SMA == scan byte-identically",
            "read percentiles come from per-query walls of the read "
            "schedule only — DML walls are excluded by construction",
        ],
        metrics=metrics,
    )
