"""C1 — concurrent serving throughput over one shared buffer pool.

Not a paper experiment: the paper measures single queries, but SMAs are
the ancestor of zone maps precisely because bucket skipping makes *many
concurrent* scan-heavy queries cheap.  This experiment stands up the
:mod:`repro.server` query service on a loaded LINEITEM and replays the
standard aggregation + range-scan mix closed-loop at several worker
counts, reporting completed-queries/s, latency percentiles, buffer hit
rate and the buckets skipped by grading.

Python threads share the GIL, so wall-clock scaling with workers is
modest for this CPU-bound engine — the experiment's point is that
throughput *holds* (no lock collapse, no accounting corruption) while
admission control keeps overload graceful.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ScratchCatalog, human_seconds
from repro.server.metrics import MetricsRegistry
from repro.server.service import QueryService
from repro.server.workload import WorkloadDriver, default_mix
from repro.tpcd.loader import load_lineitem


def exp_concurrency_throughput(
    scale_factor: float = 0.005,
    worker_counts: tuple[int, ...] = (1, 4, 16),
    queries_per_client: int = 6,
) -> ExperimentResult:
    """Closed-loop throughput at several worker counts, shared catalog."""
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    with ScratchCatalog() as catalog:
        load_lineitem(catalog, scale_factor=scale_factor, clustering="sorted")
        mix = default_mix("LINEITEM")
        for workers in worker_counts:
            registry = MetricsRegistry()
            with QueryService(
                catalog,
                workers=workers,
                queue_depth=max(32, 2 * workers),
                metrics=registry,
            ) as service:
                driver = WorkloadDriver(service, mix)
                result = driver.run_closed_loop(
                    clients=workers, queries_per_client=queries_per_client
                )
            snapshot = result.metrics
            latency = snapshot["latency_s"]["overall"]
            io = snapshot["io"]
            rows.append(
                (
                    workers,
                    result.total,
                    result.completed,
                    f"{result.throughput_qps:.1f}",
                    human_seconds(latency["p50_s"]),
                    human_seconds(latency["p95_s"]),
                    f"{io['buffer_hit_rate']:.1%}",
                    f"{io['bucket_skip_rate']:.1%}",
                )
            )
            metrics[f"qps_w{workers}"] = result.throughput_qps
            metrics[f"completed_w{workers}"] = float(result.completed)
            metrics[f"hit_rate_w{workers}"] = io["buffer_hit_rate"]
            metrics[f"skip_rate_w{workers}"] = io["bucket_skip_rate"]
    return ExperimentResult(
        exp_id="C1",
        title="Concurrent serving throughput (closed loop, shared pool)",
        headers=[
            "workers", "queries", "completed", "q/s",
            "p50", "p95", "hit rate", "skip rate",
        ],
        rows=rows,
        paper_reference="beyond the paper: ROADMAP serving layer",
        notes=[
            "clients = workers (each worker saturated); every query's "
            "IoStats window is isolated via BufferPool.query_context",
            "pure-Python engine under the GIL: expect throughput to hold, "
            "not to scale linearly, as workers grow",
        ],
        metrics=metrics,
    )
