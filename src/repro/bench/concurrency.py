"""C1/C2 — concurrent serving throughput over one shared buffer pool.

Not a paper experiment: the paper measures single queries, but SMAs are
the ancestor of zone maps precisely because bucket skipping makes *many
concurrent* scan-heavy queries cheap.  This experiment stands up the
:mod:`repro.server` query service on a loaded LINEITEM and replays the
standard aggregation + range-scan mix closed-loop at several worker
counts, reporting completed-queries/s, latency percentiles, buffer hit
rate and the buckets skipped by grading.

Python threads share the GIL, so wall-clock scaling with workers is
modest for this CPU-bound engine — the experiment's point is that
throughput *holds* (no lock collapse, no accounting corruption) while
admission control keeps overload graceful.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentResult, ScratchCatalog, human_seconds
from repro.query.session import Session
from repro.server.metrics import MetricsRegistry
from repro.server.service import QueryService
from repro.server.workload import WorkloadDriver, default_mix
from repro.tpcd.loader import load_lineitem
from repro.tpcd.queries import query1


def _tracer_for(event_log):
    """A real tracer when a trace artifact is wanted, else None (no-op)."""
    if event_log is None:
        return None
    from repro.obs import Tracer

    return Tracer()


def exp_concurrency_throughput(
    scale_factor: float = 0.005,
    worker_counts: tuple[int, ...] = (1, 4, 16),
    queries_per_client: int = 6,
    event_log=None,
    fault_injector=None,
) -> ExperimentResult:
    """Closed-loop throughput at several worker counts, shared catalog.

    ``event_log`` (an :class:`repro.obs.EventLog`) turns on tracing: every
    service run emits query events and full span trees into the JSONL
    artifact (``repro bench --trace-file``).

    ``fault_injector`` (``repro bench --faults``) attaches a
    :class:`repro.storage.faults.FaultInjector` to the shared pool for
    the whole run: queries may then fail with typed storage errors or
    retry transparently — never return wrong rows — and completed counts
    reflect the survivors.
    """
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    with ScratchCatalog() as catalog:
        load_lineitem(catalog, scale_factor=scale_factor, clustering="sorted")
        if fault_injector is not None:
            catalog.install_fault_injector(fault_injector)
        mix = default_mix("LINEITEM")
        for workers in worker_counts:
            if event_log is not None:
                event_log.emit("experiment", exp="C1", workers=workers)
            registry = MetricsRegistry()
            with QueryService(
                catalog,
                workers=workers,
                queue_depth=max(32, 2 * workers),
                metrics=registry,
                tracer=_tracer_for(event_log),
                events=event_log,
            ) as service:
                driver = WorkloadDriver(service, mix)
                result = driver.run_closed_loop(
                    clients=workers, queries_per_client=queries_per_client
                )
            snapshot = result.metrics
            latency = snapshot["latency_s"]["overall"]
            io = snapshot["io"]
            rows.append(
                (
                    workers,
                    result.total,
                    result.completed,
                    f"{result.throughput_qps:.1f}",
                    human_seconds(latency["p50_s"]),
                    human_seconds(latency["p95_s"]),
                    f"{io['buffer_hit_rate']:.1%}",
                    f"{io['bucket_skip_rate']:.1%}",
                )
            )
            metrics[f"qps_w{workers}"] = result.throughput_qps
            metrics[f"completed_w{workers}"] = float(result.completed)
            metrics[f"hit_rate_w{workers}"] = io["buffer_hit_rate"]
            metrics[f"skip_rate_w{workers}"] = io["bucket_skip_rate"]
    return ExperimentResult(
        exp_id="C1",
        title="Concurrent serving throughput (closed loop, shared pool)",
        headers=[
            "workers", "queries", "completed", "q/s",
            "p50", "p95", "hit rate", "skip rate",
        ],
        rows=rows,
        paper_reference="beyond the paper: ROADMAP serving layer",
        notes=[
            "clients = workers (each worker saturated); every query's "
            "IoStats window is isolated via BufferPool.query_context",
            "pure-Python engine under the GIL: expect throughput to hold, "
            "not to scale linearly, as workers grow",
        ],
        metrics=metrics,
    )


def exp_scan_parallelism(
    scale_factor: float = 0.005,
    scan_worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    client_counts: tuple[int, ...] = (1, 4, 16),
    queries_per_client: int = 3,
    repeats: int = 3,
    event_log=None,
    fault_injector=None,
) -> ExperimentResult:
    """C2 — morsel-driven scan parallelism on the striped buffer pool.

    Two measurements per scan-worker count (ISSUE PR 2):

    * *single-query scan speedup*: wall time of a forced full-scan
      Query 1 (``mode="scan"`` — every bucket fetched, maximum scan
      work) on a warm pool, best of *repeats*, relative to 1 worker;
    * *service throughput grid*: closed-loop completed-queries/s of the
      standard mix at 1/4/16 concurrent clients, with each running
      query fanning its scans out to *scan_workers* morsel threads.

    Results are asserted byte-identical to the serial execution.  Under
    the GIL this engine is CPU-bound, so wall speedups are modest; the
    experiment's point is that parallel scans *never lose correctness or
    accounting exactness* and that the striped pool absorbs
    ``workers x scan_workers`` threads without collapse.
    """
    q1 = query1()
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    with ScratchCatalog() as catalog:
        load_lineitem(catalog, scale_factor=scale_factor, clustering="sorted")
        mix = default_mix("LINEITEM")

        serial_session = Session(catalog)
        reference = serial_session.execute(q1, mode="scan")  # also warms the pool
        walls: dict[int, float] = {}
        for scan_workers in scan_worker_counts:
            session = Session(catalog, scan_workers=scan_workers)
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                result = session.execute(q1, mode="scan")
                best = min(best, time.perf_counter() - started)
                if result.rows != reference.rows:  # paranoia: C2 acceptance
                    raise AssertionError(
                        f"parallel scan (workers={scan_workers}) diverged "
                        f"from serial result"
                    )
            walls[scan_workers] = best

        base_wall = walls[scan_worker_counts[0]]
        # Faults apply to the concurrent-service grid only: the scan
        # speedup above is a timing baseline and must stay fault-free.
        if fault_injector is not None:
            catalog.install_fault_injector(fault_injector)
        for scan_workers in scan_worker_counts:
            qps: dict[int, float] = {}
            hit_rate = 0.0
            for clients in client_counts:
                if event_log is not None:
                    event_log.emit(
                        "experiment", exp="C2",
                        scan_workers=scan_workers, clients=clients,
                    )
                registry = MetricsRegistry()
                with QueryService(
                    catalog,
                    workers=clients,
                    queue_depth=max(32, 2 * clients),
                    metrics=registry,
                    scan_workers=scan_workers,
                    tracer=_tracer_for(event_log),
                    events=event_log,
                ) as service:
                    driver = WorkloadDriver(service, mix)
                    run = driver.run_closed_loop(
                        clients=clients, queries_per_client=queries_per_client
                    )
                if fault_injector is None and run.completed != run.total:
                    raise AssertionError(
                        f"lost queries at scan_workers={scan_workers}, "
                        f"clients={clients}: {run.completed}/{run.total}"
                    )
                qps[clients] = run.throughput_qps
                hit_rate = run.metrics["io"]["buffer_hit_rate"]
                metrics[f"qps_sw{scan_workers}_c{clients}"] = run.throughput_qps
            speedup = base_wall / walls[scan_workers]
            metrics[f"scan_wall_sw{scan_workers}"] = walls[scan_workers]
            metrics[f"scan_speedup_sw{scan_workers}"] = speedup
            rows.append(
                (
                    scan_workers,
                    human_seconds(walls[scan_workers]),
                    f"{speedup:.2f}x",
                    *(f"{qps[c]:.1f}" for c in client_counts),
                    f"{hit_rate:.1%}",
                )
            )
    return ExperimentResult(
        exp_id="C2",
        title="Morsel-driven scan parallelism (striped pool, warm)",
        headers=[
            "scan workers", "Q1 scan wall", "speedup",
            *(f"q/s @{c} clients" for c in client_counts),
            "hit rate",
        ],
        rows=rows,
        paper_reference="beyond the paper: ISSUE PR 2 (morsel-driven scans)",
        notes=[
            "Q1 forced to mode=scan: every bucket fetched, so the scan "
            "wall isolates morsel dispatch + merge overhead and gain",
            "parallel results verified byte-identical to serial execution",
            "pure-Python engine under the GIL: numpy kernels and pread "
            "release the GIL, so speedups are real but sublinear; the "
            "load-bearing claim is correctness + no lock collapse at "
            "clients x scan_workers threads",
        ],
        metrics=metrics,
    )
