"""C5 — plan-fingerprint result caching under a zipf-skewed mix.

Not a paper experiment: the paper measures single cold queries, but a
dashboard-style serving workload repeats a small set of hot plans.  C5
stands up the query service on a loaded LINEITEM and replays the
zipf-skewed Query-1 mix (:func:`repro.server.workload.zipf_mix`)
closed-loop, cache off vs cache on, at several client counts, then once
more cache-on with a paced INSERT writer running — the cell that proves
epoch invalidation keeps hits consistent under concurrent DML.

Correctness is gated inside the experiment, timing floors only under
``REPRO_BENCH_ASSERT_SPEEDUP=1``: on the static cells every kept result
must be byte-identical to an uncached serial replay, and on the DML
cell all results sharing a (plan, epoch) pair must agree byte-for-byte
(the stale-read detector — a hit served across an epoch boundary would
trip it).
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench.harness import ExperimentResult, ScratchCatalog, human_seconds
from repro.query.session import Session
from repro.server.metrics import MetricsRegistry
from repro.server.service import QueryService
from repro.server.workload import WorkloadDriver, zipf_mix
from repro.tpcd.loader import load_lineitem

#: Floors asserted only under ``REPRO_BENCH_ASSERT_SPEEDUP=1``: the
#: cache must at least double zipf-mix throughput at the top client
#: count, and at least half the lookups must hit.
SPEEDUP_FLOOR = 2.0
HIT_RATE_FLOOR = 0.5


def _tracer_for(event_log):
    """A real tracer when a trace artifact is wanted, else None (no-op)."""
    if event_log is None:
        return None
    from repro.obs import Tracer

    return Tracer()


def _replay_gate(catalog, mix, run) -> None:
    """Static-table gate: every kept result == an uncached serial replay."""
    session = Session(catalog)
    references: dict[str, object] = {}
    by_name = {entry.name: entry for entry in mix}
    for outcome in run.outcomes:
        if outcome.result is None:
            continue
        if outcome.name not in references:
            references[outcome.name] = session.execute(
                by_name[outcome.name].query
            )
        reference = references[outcome.name]
        if (
            outcome.result.columns != reference.columns
            or repr(outcome.result.rows) != repr(reference.rows)
        ):
            raise AssertionError(
                f"cached serving diverged from uncached replay for "
                f"{outcome.name} (strategy {outcome.result.plan.strategy})"
            )


def _epoch_gate(run) -> None:
    """DML-cell gate: results sharing (plan, epoch) agree byte-for-byte."""
    groups: dict[tuple, tuple] = {}
    for outcome in run.outcomes:
        result = outcome.result
        if result is None or result.epoch is None:
            continue
        key = (outcome.name, int(result.epoch))
        fingerprint = (tuple(result.columns), repr(result.rows))
        if key in groups and groups[key] != fingerprint:
            raise AssertionError(
                f"stale read: two results for plan {outcome.name} at epoch "
                f"{result.epoch} differ (one of them crossed a DML boundary)"
            )
        groups.setdefault(key, fingerprint)


def exp_result_cache(
    scale_factor: float = 0.005,
    client_counts: tuple[int, ...] = (4, 16),
    queries_per_client: int = 6,
    distinct: int = 16,
    zipf_s: float = 1.2,
    cache_entries: int = 256,
    shared_scans: bool = False,
    dml_interval_s: float = 0.05,
    dml_batch_rows: int = 32,
    event_log=None,
    fault_injector=None,
) -> ExperimentResult:
    """C5 — result-cache speedup and hit rate on the zipf dashboard mix.

    One (clients, cache off/on) grid on a static table plus a final
    cache-on cell at the top client count with a paced INSERT writer.
    ``shared_scans`` additionally enables cooperative scan sharing in
    the cache-on cells (the CLI's ``--shared-scans``); the headline
    speedup still compares against the plain cache-off baseline.
    """
    rows: list[tuple] = []
    metrics: dict[str, float] = {}
    assert_floors = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1"
    with ScratchCatalog() as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        if fault_injector is not None:
            catalog.install_fault_injector(fault_injector)
        table_name = loaded.table.name
        mix = zipf_mix(table_name, distinct=distinct, s=zipf_s)

        def run_cell(
            *, clients: int, cache: bool, writer_rate_s: float | None = None
        ):
            if event_log is not None:
                event_log.emit(
                    "experiment", exp="C5", clients=clients, cache=cache,
                    dml=writer_rate_s is not None,
                )
            registry = MetricsRegistry()
            counters = {"batches": 0}
            stop = threading.Event()

            def ingest_loop() -> None:
                from repro.errors import ReproError
                from repro.query.query import InsertStatement

                template = tuple(
                    tuple(record)
                    for record in loaded.table.read_bucket(0).tolist()
                )[:dml_batch_rows]
                while not stop.is_set():
                    started = time.perf_counter()
                    try:
                        service.submit(
                            InsertStatement(table_name, template), kind="dml"
                        ).result()
                        counters["batches"] += 1
                    except ReproError:
                        pass
                    remaining = writer_rate_s - (
                        time.perf_counter() - started
                    )
                    if remaining > 0:
                        stop.wait(remaining)

            with QueryService(
                catalog,
                workers=clients + (1 if writer_rate_s is not None else 0),
                queue_depth=max(32, 2 * clients),
                metrics=registry,
                tracer=_tracer_for(event_log),
                events=event_log,
                result_cache=cache,
                cache_entries=cache_entries,
                shared_scans=cache and shared_scans,
            ) as service:
                writer = None
                if writer_rate_s is not None:
                    writer = threading.Thread(
                        target=ingest_loop, name="c5-writer", daemon=True
                    )
                    writer.start()
                driver = WorkloadDriver(service, mix)
                run = driver.run_closed_loop(
                    clients=clients,
                    queries_per_client=queries_per_client,
                    keep_results=True,
                )
                if writer is not None:
                    stop.set()
                    writer.join()
                cache_snapshot = (
                    service.result_cache.snapshot()
                    if service.result_cache is not None
                    else None
                )
            if fault_injector is None and run.completed != run.total:
                errors = sorted(
                    {
                        outcome.error
                        for outcome in run.outcomes
                        if outcome.error is not None
                    }
                )[:4]
                raise AssertionError(
                    f"lost queries at clients={clients}, cache={cache}, "
                    f"dml={writer_rate_s is not None}: "
                    f"{run.completed}/{run.total} completed "
                    f"({run.rejected} rejected, {run.timed_out} timed out, "
                    f"{run.cancelled} cancelled, {run.failed} failed; "
                    f"errors: {errors})"
                )
            return run, cache_snapshot, counters["batches"]

        top_clients = client_counts[-1]
        for clients in client_counts:
            off_run, _, _ = run_cell(clients=clients, cache=False)
            if fault_injector is None:
                _replay_gate(catalog, mix, off_run)
            on_run, cache_snap, _ = run_cell(clients=clients, cache=True)
            if fault_injector is None:
                _replay_gate(catalog, mix, on_run)
            speedup = (
                on_run.throughput_qps / off_run.throughput_qps
                if off_run.throughput_qps > 0
                else 0.0
            )
            hit_rate = cache_snap["hit_rate"] if cache_snap else 0.0
            for label, run in (("off", off_run), ("on", on_run)):
                latency = run.metrics["latency_s"]["overall"]
                rows.append(
                    (
                        clients,
                        label,
                        run.completed,
                        f"{run.throughput_qps:.1f}",
                        human_seconds(latency["p50_s"]),
                        human_seconds(latency["p95_s"]),
                        f"{hit_rate:.1%}" if label == "on" else "-",
                        f"{speedup:.2f}x" if label == "on" else "-",
                    )
                )
            metrics[f"qps_cache_off_c{clients}"] = off_run.throughput_qps
            metrics[f"qps_cache_on_c{clients}"] = on_run.throughput_qps
            metrics[f"cache_speedup_c{clients}"] = speedup
            metrics[f"hit_rate_cache_on_c{clients}"] = hit_rate

        # DML cell: cache on, paced writer — epoch invalidation keeps
        # hits consistent while the table grows under the mix.
        dml_run, dml_snap, batches = run_cell(
            clients=top_clients, cache=True, writer_rate_s=dml_interval_s
        )
        if fault_injector is None:
            _epoch_gate(dml_run)
        dml_hit_rate = dml_snap["hit_rate"] if dml_snap else 0.0
        latency = dml_run.metrics["latency_s"]["overall"]
        rows.append(
            (
                top_clients,
                "on+dml",
                dml_run.completed,
                f"{dml_run.throughput_qps:.1f}",
                human_seconds(latency["p50_s"]),
                human_seconds(latency["p95_s"]),
                f"{dml_hit_rate:.1%}",
                "-",
            )
        )
        metrics[f"qps_cache_dml_c{top_clients}"] = dml_run.throughput_qps
        metrics["hit_rate_cache_dml"] = dml_hit_rate
        metrics["dml_batches"] = float(batches)
        metrics["dml_invalidations_count"] = float(
            dml_snap["invalidations"] if dml_snap else 0
        )
        if shared_scans:
            metrics["shared_scans_enabled"] = 1.0
        from repro.query import procpool

        procpool.dispose_pools(catalog.root_dir)

    if assert_floors and fault_injector is None:
        speedup = metrics[f"cache_speedup_c{top_clients}"]
        hit_rate = metrics[f"hit_rate_cache_on_c{top_clients}"]
        if speedup < SPEEDUP_FLOOR:
            raise AssertionError(
                f"cache speedup {speedup:.2f}x at {top_clients} clients "
                f"below the {SPEEDUP_FLOOR:.1f}x floor"
            )
        if hit_rate < HIT_RATE_FLOOR:
            raise AssertionError(
                f"cache hit rate {hit_rate:.1%} below the "
                f"{HIT_RATE_FLOOR:.0%} floor"
            )
    return ExperimentResult(
        exp_id="C5",
        title="Result cache: zipf mix throughput, cache off/on, DML cell",
        headers=[
            "clients", "cache", "completed", "q/s",
            "p50", "p95", "hit rate", "speedup",
        ],
        rows=rows,
        paper_reference="beyond the paper: ISSUE PR 10 (result caching)",
        notes=[
            f"zipf mix: {distinct} Query-1 delta variants, s={zipf_s}, "
            "pre-interleaved weight-1 schedule (rank 1 ~ a third of "
            "traffic); closed loop, warm shared pool",
            "static cells gate every kept result byte-identical to an "
            "uncached serial replay; the DML cell gates all results "
            "sharing a (plan, epoch) pair byte-identical (stale-read "
            "detector)",
            "cache keyed on canonical plan + per-table ingest epoch: a "
            "paced INSERT writer advances the epoch, so hits never span "
            "a write (hit rate dips instead)",
            "timing floors (speedup, hit rate) asserted only under "
            "REPRO_BENCH_ASSERT_SPEEDUP=1",
        ],
        metrics=metrics,
    )
