"""Experiment harness: structured results, paper-style table rendering.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` — machine-checkable rows plus human-readable
rendering — so the same code drives pytest assertions, the
pytest-benchmark targets, and the EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

import re
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable

from repro.storage.catalog import Catalog

#: latency-percentile metric names: ``p50``, ``p95_s4``, ``read_p99_x`` ...
_PERCENTILE_RE = re.compile(r"(?:^|_)p\d{1,3}(?:_|$)")


def metric_unit(name: str) -> str:
    """Canonical unit for a benchmark metric, from its naming convention.

    The BENCH_*.json artifacts label every metric with a unit so CI
    dashboards don't have to guess.  Time is always ``"seconds"`` —
    including latency percentiles (``p50_s4``), which name a duration
    even when the suffix encodes a shard count rather than seconds.
    Dimensionless tallies (batch/row/epoch counters) are ``"count"``;
    only a genuinely unit-less metric falls through to ``"value"``.
    """
    if name.startswith("qps") or "_qps" in name:
        return "queries/s"
    if "speedup" in name or name.endswith("_ratio"):
        return "x"
    if "rate" in name or "fraction" in name:
        return "fraction"
    if "bytes" in name:
        return "bytes"
    if (
        "wall" in name
        or "seconds" in name
        or "latency" in name
        or name.endswith("_s")
        or _PERCENTILE_RE.search(name)
    ):
        return "seconds"
    if (
        "completed" in name
        or "batches" in name
        or "rows" in name
        or "epoch" in name
        or name.startswith("num_")
        or name.endswith("_count")
    ):
        return "count"
    return "value"


def human_bytes(size: float) -> str:
    """Render a byte count with a binary-unit suffix."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError  # pragma: no cover


def human_seconds(seconds: float) -> str:
    """Render a duration compactly."""
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.2f} ms"


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Monospace-aligned table, right-aligning numeric-looking cells."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def is_numeric(text: str) -> bool:
        stripped = text.replace(",", "").replace("%", "").replace("x", "")
        stripped = stripped.replace(" s", "").replace(" ms", "")
        for unit in (" B", " KiB", " MiB", " GiB", " TiB"):
            stripped = stripped.replace(unit, "")
        try:
            float(stripped)
            return True
        except ValueError:
            return False

    def render_row(row: list[str]) -> str:
        parts = []
        for i, text in enumerate(row):
            if is_numeric(text):
                parts.append(text.rjust(widths[i]))
            else:
                parts.append(text.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [render_row(headers), "  ".join("-" * w for w in widths)]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[tuple]
    paper_reference: str = ""
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.paper_reference:
            lines.append(f"paper: {self.paper_reference}")
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.metrics:
            rendered = ", ".join(
                f"{name}={value:.4g}" for name, value in sorted(self.metrics.items())
            )
            lines.append(f"metrics: {rendered}")
        return "\n".join(lines)

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"experiment {self.exp_id} has no metric {name!r}; "
                f"have {sorted(self.metrics)}"
            ) from None


class ScratchCatalog:
    """A temporary-directory catalog that cleans up after itself."""

    def __init__(self, *, buffer_pages: int = 8192):
        self._dir = tempfile.mkdtemp(prefix="repro-bench-")
        self.catalog = Catalog(self._dir, buffer_pages=buffer_pages)

    def __enter__(self) -> Catalog:
        return self.catalog

    def __exit__(self, *exc_info: object) -> None:
        self.catalog.close()
        shutil.rmtree(self._dir, ignore_errors=True)


def run_and_render(experiment: Callable[[], ExperimentResult]) -> ExperimentResult:
    """Run one experiment and print its rendering (for -s bench runs)."""
    result = experiment()
    print()
    print(result.render())
    return result
