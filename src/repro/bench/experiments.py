"""Every table and figure of the paper's evaluation, as runnable experiments.

Each ``exp_*`` function stands up its own scratch database, runs the
measurement, and returns an :class:`~repro.bench.harness.ExperimentResult`
whose ``metrics`` the tests and benchmarks assert on.  The experiment ids
(E1–E10, F2, F5) are indexed in DESIGN.md; paper-vs-measured numbers are
recorded in EXPERIMENTS.md.

All experiments run at laptop scale (default SF ≤ 0.05) and report the
*simulated 1998 seconds* from exact I/O counts next to measured
wall-clock; where the paper quotes absolute SF=1 numbers, a linear
projection (page/tuple counts scale with SF; per-file positioning does
not) is reported alongside.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from repro.baselines.btree import BPlusTree
from repro.baselines.datacube import DataCube, cube_bytes, paper_cube_comparison
from repro.baselines.projection import ProjectionIndex
from repro.core.definition import SmaDefinition
from repro.core.hierarchy import HierarchicalMinMax
from repro.core.maintenance import SmaMaintainer
from repro.core.semijoin import semijoin
from repro.core.aggregates import count_star, maximum, minimum, total
from repro.lang.expr import col
from repro.lang.predicate import cmp
from repro.query.query import OutputAggregate
from repro.query.session import Session
from repro.storage.disk import DiskModel, MODERN_DISK, PAPER_DISK
from repro.storage.stats import IoStats
from repro.storage.types import date_to_int, int_to_date
from repro.bench.harness import (
    ExperimentResult,
    ScratchCatalog,
    human_bytes,
    human_seconds,
)
from repro.tpcd.dbgen import GenConfig, generate_tables
from repro.tpcd.distributions import diagonal_distribution
from repro.tpcd.loader import load_lineitem, load_table
from repro.tpcd.queries import (
    QUERY1_BASE_DATE,
    query1,
    query1_sma_definitions,
    query6,
    query6_sma_definitions,
)

#: LINEITEM bucket count at SF = 1 in the paper's configuration; used to
#: project small-scale runs onto the paper's absolute numbers.
PAPER_SF1_BUCKETS = 187_733


def _project_stats(stats: IoStats, factor: float) -> IoStats:
    """Scale one run's counters to a larger database.

    Sequential/skip reads, writes, tuples and SMA entries grow linearly
    with scale; random positioning reads (one per file/scan start) do
    not.
    """
    scaled = IoStats()
    for field in dataclasses.fields(IoStats):
        value = getattr(stats, field.name)
        if field.name == "random_page_reads":
            scaled.random_page_reads = value
        else:
            setattr(scaled, field.name, int(value * factor))
    return scaled


# ----------------------------------------------------------------------
# E1 — SMA creation time and size (Section 2.4, first table)
# ----------------------------------------------------------------------

def exp_sma_creation(
    scale_factor: float = 0.02, disk: DiskModel = PAPER_DISK
) -> ExperimentResult:
    """Per-SMA creation time and SMA-file sizes, one scan per SMA."""
    paper_pages = {
        "count": 736, "max": 184, "min": 184, "qty": 1468,
        "dis": 1468, "ext": 1468, "extdis": 1468, "extdistax": 1468,
    }
    paper_seconds = {
        "count": 117, "max": 116, "min": 103, "qty": 104,
        "dis": 100, "ext": 101, "extdis": 95, "extdistax": 99,
    }
    # Buffer far smaller than the relation (as at warehouse scale), so
    # each per-SMA build pass really reads the data from disk.
    with ScratchCatalog(buffer_pages=256) as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted",
            separate_scans=True,
        )
        buckets = loaded.table.num_buckets
        factor = PAPER_SF1_BUCKETS / buckets
        rows = []
        total_sim = 0.0
        for report in loaded.build_reports:
            simulated = disk.seconds(report.stats)
            projected = disk.seconds(_project_stats(report.stats, factor))
            total_sim += simulated
            rows.append(
                (
                    report.definition_name,
                    report.num_files,
                    report.pages,
                    human_bytes(report.size_bytes),
                    human_seconds(report.wall_seconds),
                    human_seconds(simulated),
                    human_seconds(projected),
                    f"{paper_seconds[report.definition_name]} s",
                    paper_pages[report.definition_name],
                )
            )
        sma_pages = loaded.sma_set.total_pages
        metrics = {
            "total_simulated_s": total_sim,
            "sma_pages": sma_pages,
            "buckets": buckets,
            "pages_per_1k_buckets_min": (
                loaded.sma_set.definition_pages("min") / buckets * 1000
            ),
            "pages_per_1k_buckets_count": (
                loaded.sma_set.definition_pages("count") / buckets * 1000
            ),
            "pages_per_1k_buckets_qty": (
                loaded.sma_set.definition_pages("qty") / buckets * 1000
            ),
        }
    return ExperimentResult(
        exp_id="E1",
        title=f"SMA creation time and size (SF={scale_factor}, {buckets} buckets)",
        headers=[
            "sma", "files", "pages", "size", "wall", "simulated",
            "proj@SF=1", "paper time", "paper pages@SF=1",
        ],
        rows=rows,
        paper_reference="Section 2.4, creation-time/size table",
        notes=[
            "paper page counts normalize to ~0.98 (dates), ~3.92 (count), "
            "~7.82 (8-byte sums) pages per 1000 buckets — compare the "
            "pages_per_1k_buckets metrics",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E2 — space overhead vs the relation and vs a B+-tree (Section 2.4)
# ----------------------------------------------------------------------

def exp_space_overhead(
    scale_factor: float = 0.02, disk: DiskModel = PAPER_DISK
) -> ExperimentResult:
    with ScratchCatalog(buffer_pages=256) as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        table = loaded.table
        sma_bytes = loaded.sma_set.total_bytes
        sma_build_stats = IoStats()
        for report in loaded.build_reports:
            sma_build_stats.merge(report.stats)

        before = catalog.stats.snapshot()
        started = time.perf_counter()
        btree = BPlusTree.build("l_shipdate", table, "L_SHIPDATE", catalog.pool)
        btree_wall = time.perf_counter() - started
        btree_stats = catalog.stats.snapshot() - before

        rows = [
            (
                "LINEITEM", human_bytes(table.size_bytes), "100.0%", "-", "-",
            ),
            (
                "all 26 SMA-files",
                human_bytes(sma_bytes),
                f"{sma_bytes / table.size_bytes:.1%}",
                human_seconds(disk.seconds(sma_build_stats)),
                "33.78 MB (4.6%) / < 15 min",
            ),
            (
                "B+-tree on L_SHIPDATE (bulk load)",
                human_bytes(btree.size_bytes),
                f"{btree.size_bytes / table.size_bytes:.1%}",
                human_seconds(disk.seconds(btree_stats)),
                "~230 MB (31%) / far beyond 15 min",
            ),
            (
                "B+-tree, tuple-wise insertion (1998-style)",
                human_bytes(btree.size_bytes),
                f"{btree.size_bytes / table.size_bytes:.1%}",
                human_seconds(table.num_records * disk.random_page_s),
                "(each insert seeks a random leaf; index >> buffer)",
            ),
        ]
        metrics = {
            "sma_fraction": sma_bytes / table.size_bytes,
            "btree_fraction": btree.size_bytes / table.size_bytes,
            "sma_build_sim_s": disk.seconds(sma_build_stats),
            "btree_build_sim_s": disk.seconds(btree_stats),
            "btree_tuplewise_sim_s": table.num_records * disk.random_page_s,
            "btree_wall_s": btree_wall,
        }
    return ExperimentResult(
        exp_id="E2",
        title=f"Space and build cost: SMAs vs B+-tree (SF={scale_factor})",
        headers=["structure", "size", "of relation", "build (simulated)", "paper@SF=1"],
        rows=rows,
        paper_reference="Section 2.4 (space requirements, B+-tree comparison)",
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E3 — data cube space arithmetic (Section 2.4)
# ----------------------------------------------------------------------

def exp_datacube_space(scale_factor: float = 0.005) -> ExperimentResult:
    paper_values = ("479.25 KB", "1196.25 MB", "2985.95 GB")
    rows = []
    reports = paper_cube_comparison()
    for report, paper in zip(reports, paper_values):
        rows.append(
            (
                f"cube, {len(report.dimensions) - 1} date dim(s) x 4 flags",
                human_bytes(report.total_bytes),
                paper,
            )
        )
    # SMAs for all three dates: the Figure 4 set plus min/max for the
    # two other date attributes of LINEITEM.
    with ScratchCatalog() as catalog:
        extra = [
            SmaDefinition("commit_min", "LINEITEM", minimum(col("L_COMMITDATE"))),
            SmaDefinition("commit_max", "LINEITEM", maximum(col("L_COMMITDATE"))),
            SmaDefinition("receipt_min", "LINEITEM", minimum(col("L_RECEIPTDATE"))),
            SmaDefinition("receipt_max", "LINEITEM", maximum(col("L_RECEIPTDATE"))),
        ]
        loaded = load_lineitem(
            catalog,
            scale_factor=scale_factor,
            clustering="sorted",
            sma_definitions=query1_sma_definitions() + extra,
        )
        sma_bytes = loaded.sma_set.total_bytes
        projected = sma_bytes * (PAPER_SF1_BUCKETS / loaded.table.num_buckets)
        rows.append(
            (
                "all SMAs, 3 dates supported (projected to SF=1)",
                human_bytes(projected),
                "51.12 MB",
            )
        )

        # Validate the closed-form model against a materialized cube.
        cube = DataCube.build(
            loaded.table,
            ("L_RETURNFLAG", "L_LINESTATUS"),
            (
                OutputAggregate("sum_qty", total(col("L_QUANTITY"))),
                OutputAggregate("n", count_star()),
            ),
        )
        formula = cube_bytes(cube.dimension_cardinalities(), cube.entry_bytes)
        rows.append(
            (
                "materialized 2-flag cube vs formula",
                f"{human_bytes(cube.allocated_bytes)} = {human_bytes(formula)}",
                "(validates the space model)",
            )
        )
        metrics = {
            "cube3_over_sma": reports[2].total_bytes / projected,
            "cube1_bytes": float(reports[0].total_bytes),
            "cube3_bytes": float(reports[2].total_bytes),
            "sma_projected_bytes": projected,
            "formula_matches": float(cube.allocated_bytes == formula),
        }
    return ExperimentResult(
        exp_id="E3",
        title="Data cube space vs SMA space",
        headers=["structure", "size", "paper"],
        rows=rows,
        paper_reference="Section 2.4 (cube storage arithmetic, 2556-day dates)",
        notes=[
            "the 2985.95 GB / 51.12 MB contrast is the paper's headline "
            "space argument: ratio "
            f"~{cube_bytes([2556] * 3 + [4]) / (51.12 * 1024 ** 2):.0f}x",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E4 — Query 1 runtime: scan vs SMA cold vs SMA warm (Section 2.4)
# ----------------------------------------------------------------------

def exp_query1_speedup(
    scale_factor: float = 0.05,
    delta: int = 90,
    disk: DiskModel = PAPER_DISK,
) -> ExperimentResult:
    with ScratchCatalog() as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        factor = PAPER_SF1_BUCKETS / loaded.table.num_buckets
        session = Session(catalog, disk)
        query = query1(delta=delta)

        result_scan = session.execute(query, mode="scan", cold=True)
        result_cold = session.execute(query, mode="sma", cold=True)
        result_warm = session.execute(query, mode="sma")

        def row(label: str, result, paper: str):
            projected = disk.seconds(_project_stats(result.stats, factor))
            return (
                label,
                human_seconds(result.wall_seconds),
                human_seconds(result.simulated_seconds),
                human_seconds(projected),
                paper,
            )

        rows = [
            row("Query 1 without SMAs (cold)", result_scan, "128 s"),
            row("Query 1 with SMAs (cold)", result_cold, "4.9 s"),
            row("Query 1 with SMAs (warm)", result_warm, "1.9 s"),
        ]
        proj_scan = disk.seconds(_project_stats(result_scan.stats, factor))
        proj_cold = disk.seconds(_project_stats(result_cold.stats, factor))
        proj_warm = disk.seconds(_project_stats(result_warm.stats, factor))
        metrics = {
            "speedup_cold": result_scan.simulated_seconds
            / result_cold.simulated_seconds,
            "speedup_warm": result_scan.simulated_seconds
            / result_warm.simulated_seconds,
            "proj_scan_s": proj_scan,
            "proj_cold_s": proj_cold,
            "proj_warm_s": proj_warm,
            "fraction_ambivalent": result_cold.plan.fraction_ambivalent or 0.0,
            "wall_speedup_warm": result_scan.wall_seconds
            / max(result_warm.wall_seconds, 1e-9),
        }
        # Result correctness cross-check: SMA and scan rows must agree.
        assert len(result_scan.rows) == len(result_cold.rows)
    return ExperimentResult(
        exp_id="E4",
        title=f"Query 1 runtime, LINEITEM sorted on shipdate (SF={scale_factor})",
        headers=["configuration", "wall", "simulated", "proj@SF=1", "paper@SF=1"],
        rows=rows,
        paper_reference="Section 2.4, query response time table",
        notes=[
            "the paper's claim: 'Processing Query 1 with SMAs becomes two "
            "orders of magnitude faster!' — compare speedup_warm",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# F5 — runtime vs fraction of ambivalent buckets; break-even (Figure 5)
# ----------------------------------------------------------------------

def exp_breakeven_sweep(
    scale_factor: float = 0.02,
    fractions: tuple[float, ...] = (
        0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
    ),
    disk: DiskModel = PAPER_DISK,
) -> ExperimentResult:
    """Sweep the contaminated-bucket fraction and find the break-even.

    The buffer pool is sized to hold the SMA-files but not the relation,
    reproducing the paper's warm regime (SMA-files cached, data pages
    always from disk — at SF=1 a 733 MB relation can never stay warm in
    an 8 MB buffer).
    """
    rows = []
    sma_seconds: list[float] = []
    scan_seconds: list[float] = []
    ambivalent: list[float] = []
    for fraction in fractions:
        with ScratchCatalog(buffer_pages=256) as catalog:
            loaded = load_lineitem(
                catalog,
                scale_factor=scale_factor,
                clustering="sorted",
                contaminate_fraction=fraction,
            )
            # Place the cutoff at the median shipdate so every planted
            # swap straddles the predicate (the paper varies the
            # ambivalent fraction directly; the predicate constant is
            # immaterial to the Figure 5 mechanism).
            max_values = loaded.sma_set.files_of("max")[()].values(charge=False)
            cutoff = int_to_date(int(np.median(max_values)))
            session = Session(catalog, disk)
            query = query1(cutoff=cutoff)
            result_scan = session.execute(query, mode="scan", cold=True)
            session.execute(query, mode="sma", cold=True)  # warm the SMA files
            result_sma = session.execute(query, mode="sma")
            sma_seconds.append(result_sma.simulated_seconds)
            scan_seconds.append(result_scan.simulated_seconds)
            ambivalent.append(result_sma.plan.fraction_ambivalent or 0.0)
            rows.append(
                (
                    f"{fraction:.2f}",
                    f"{ambivalent[-1]:.3f}",
                    human_seconds(result_scan.simulated_seconds),
                    human_seconds(result_sma.simulated_seconds),
                    f"{result_sma.simulated_seconds / result_scan.simulated_seconds:.2f}",
                )
            )

    breakeven = None
    for i in range(1, len(fractions)):
        if (sma_seconds[i - 1] <= scan_seconds[i - 1]) and (
            sma_seconds[i] > scan_seconds[i]
        ):
            # Linear interpolation between the two sweep points.
            gap_before = scan_seconds[i - 1] - sma_seconds[i - 1]
            gap_after = sma_seconds[i] - scan_seconds[i]
            t = gap_before / (gap_before + gap_after)
            breakeven = ambivalent[i - 1] + t * (ambivalent[i] - ambivalent[i - 1])
            break
    metrics = {
        "breakeven_fraction": breakeven if breakeven is not None else float("nan"),
        "sma_over_scan_at_max": sma_seconds[-1] / scan_seconds[-1],
        "scan_flatness": max(scan_seconds) / max(min(scan_seconds), 1e-12),
    }
    return ExperimentResult(
        exp_id="F5",
        title=f"Runtime vs ambivalent-bucket fraction (SF={scale_factor})",
        headers=["planted", "ambivalent", "scan (sim)", "SMA (sim)", "SMA/scan"],
        rows=rows,
        paper_reference="Figure 5 — break-even at ~25% of buckets",
        notes=[
            "paper: 'The breakeven point is at about 25% of the total "
            "number of buckets'",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# F2 — diagonal data distribution (Figure 2) and its clustering payoff
# ----------------------------------------------------------------------

def exp_diagonal_distribution(
    scale_factor: float = 0.01, sample: int = 20_000, seed: int = 7
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    events, intro = diagonal_distribution(rng, sample)
    lag = intro - events
    correlation = float(np.corrcoef(events, intro)[0, 1])
    rows = [
        (
            "diagonal sample",
            f"{sample} points",
            f"corr(event, introduction) = {correlation:.4f}",
        ),
        (
            "lag (days)",
            f"mean {lag.mean():.1f}",
            f"std {lag.std():.1f}; all points right of diagonal: "
            f"{bool((lag >= 0).all())}",
        ),
    ]
    ambivalent_by_clustering: dict[str, float] = {}
    cutoff = QUERY1_BASE_DATE
    for clustering in ("sorted", "toc", "uniform"):
        with ScratchCatalog() as catalog:
            loaded = load_lineitem(
                catalog, scale_factor=scale_factor, clustering=clustering
            )
            maxs = loaded.sma_set.files_of("max")[()].values(charge=False)
            mins = loaded.sma_set.files_of("min")[()].values(charge=False)
            mid = int_to_date((int(mins.min()) + int(maxs.max())) // 2)
            partitioning = loaded.sma_set.partition(
                cmp("L_SHIPDATE", "<=", mid), charge=False
            )
            fraction = partitioning.fraction_ambivalent
            ambivalent_by_clustering[clustering] = fraction
            rows.append(
                (
                    f"clustering={clustering}",
                    f"{loaded.table.num_buckets} buckets",
                    f"ambivalent at median shipdate predicate: {fraction:.3f}",
                )
            )
    metrics = {
        "correlation": correlation,
        "amb_sorted": ambivalent_by_clustering["sorted"],
        "amb_toc": ambivalent_by_clustering["toc"],
        "amb_uniform": ambivalent_by_clustering["uniform"],
    }
    return ExperimentResult(
        exp_id="F2",
        title="Diagonal data distribution and implicit clustering payoff",
        headers=["subject", "size", "observation"],
        rows=rows,
        paper_reference="Figure 2 / Section 2.2 (time-of-creation clustering)",
        notes=[
            "expected ordering: ambivalence sorted < toc << uniform "
            "(~1.0 for uniform: every bucket spans the full date range)",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E5 — SMA-file size ratio (Section 2.1: 1/1000th of the data)
# ----------------------------------------------------------------------

def exp_sma_file_ratio(scale_factor: float = 0.01) -> ExperimentResult:
    with ScratchCatalog() as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        table = loaded.table
        min_file = loaded.sma_set.files_of("min")[()]
        ratio = min_file.size_bytes / table.size_bytes
        rows = [
            ("LINEITEM", human_bytes(table.size_bytes), f"{table.num_pages} pages"),
            (
                "min(L_SHIPDATE) SMA-file (4-byte entries)",
                human_bytes(min_file.size_bytes),
                f"{min_file.num_pages} pages",
            ),
            ("ratio", f"1 : {1 / ratio:.0f}", "paper: ~1/1000"),
        ]
        metrics = {"ratio": ratio}
    return ExperimentResult(
        exp_id="E5",
        title="SMA-file size relative to the indexed data",
        headers=["object", "size", "pages"],
        rows=rows,
        paper_reference="Section 2.1 ('only 1/1000th of the size of the original data')",
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E7 — hierarchical SMAs (Section 4)
# ----------------------------------------------------------------------

def exp_hierarchical(
    scale_factor: float = 0.05, entries_per_block: int | None = None
) -> ExperimentResult:
    """Imperfect (toc) clustering so mid-selectivity predicates leave
    ambivalent level-2 blocks — the regime the paper argues hierarchy
    helps at 'rather high and rather low selectivities'."""
    with ScratchCatalog() as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="toc", lag_std=60.0
        )
        sma_set = loaded.sma_set
        min_file = sma_set.files_of("min")[()]
        max_file = sma_set.files_of("max")[()]
        hierarchy = HierarchicalMinMax.build(
            "L_SHIPDATE",
            min_file,
            max_file,
            catalog.pool,
            os.path.join(catalog.root_dir, "hierarchy"),
            entries_per_block=entries_per_block,
        )
        mins = min_file.values(charge=False)
        maxs = max_file.values(charge=False)
        lo, hi = int(mins.min()), int(maxs.max())
        rows = []
        savings = {}
        for label, cutoff in (
            ("low selectivity (2%)", lo + int(0.02 * (hi - lo))),
            ("mid selectivity (50%)", lo + int(0.50 * (hi - lo))),
            ("high selectivity (98%)", lo + int(0.98 * (hi - lo))),
        ):
            predicate = cmp("L_SHIPDATE", "<=", int_to_date(cutoff)).bind(
                loaded.table.schema
            )
            catalog.go_cold()
            before = catalog.stats.snapshot()
            flat = hierarchy.flat_partition(predicate, loaded.table.num_buckets)
            flat_stats = catalog.stats.snapshot() - before
            catalog.go_cold()
            before = catalog.stats.snapshot()
            hier = hierarchy.partition(predicate, loaded.table.num_buckets)
            hier_stats = catalog.stats.snapshot() - before
            assert flat == hier  # identical partitionings, cheaper I/O
            rows.append(
                (
                    label,
                    flat_stats.page_reads,
                    hier_stats.page_reads,
                    flat_stats.sma_entries_read,
                    hier_stats.sma_entries_read,
                )
            )
            savings[label] = flat_stats.sma_entries_read - hier_stats.sma_entries_read
        metrics = {
            "entries_saved_low": float(savings["low selectivity (2%)"]),
            "entries_saved_high": float(savings["high selectivity (98%)"]),
            "entries_saved_mid": float(savings["mid selectivity (50%)"]),
            "level2_pages": float(hierarchy.level2_pages),
        }
    return ExperimentResult(
        exp_id="E7",
        title=f"Hierarchical SMAs: level-1 reads saved (SF={scale_factor})",
        headers=[
            "predicate", "flat pages", "hier pages",
            "flat entries", "hier entries",
        ],
        rows=rows,
        paper_reference="Section 4 (hierarchical SMAs)",
        notes=[
            "expected: big entry savings at extreme selectivities (level-2 "
            "blocks settle wholesale), little at mid (the boundary block "
            "must drill down, everything else settles at level 2 anyway)",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E8 — semi-join SMAs (Section 4)
# ----------------------------------------------------------------------

def exp_semijoin(scale_factor: float = 0.01, seed: int = 42) -> ExperimentResult:
    with ScratchCatalog() as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        config = GenConfig(scale_factor=scale_factor, seed=seed + 100)
        orders = generate_tables(config, ("ORDERS",))["ORDERS"]
        # S: the earliest 2% of orders — a narrow O_ORDERDATE range, so
        # the semi-join bound disqualifies most LINEITEM buckets.
        orders = orders[np.argsort(orders["O_ORDERDATE"], kind="stable")]
        subset = orders[: max(len(orders) // 50, 1)]
        s_table = load_table(catalog, "ORDERS", subset)

        before = catalog.stats.snapshot()
        with_sma, predicate = semijoin(
            loaded.table, "L_SHIPDATE", "<", s_table, "O_ORDERDATE",
            sma_set=loaded.sma_set,
        )
        stats_sma = catalog.stats.snapshot() - before

        before = catalog.stats.snapshot()
        without_sma, _ = semijoin(
            loaded.table, "L_SHIPDATE", "<", s_table, "O_ORDERDATE"
        )
        stats_scan = catalog.stats.snapshot() - before

        assert len(with_sma) == len(without_sma)
        rows = [
            (
                "with SMA reduction",
                stats_sma.buckets_fetched,
                stats_sma.buckets_skipped,
                len(with_sma),
            ),
            (
                "without (full scan)",
                stats_scan.buckets_fetched,
                stats_scan.buckets_skipped,
                len(without_sma),
            ),
        ]
        metrics = {
            "buckets_fetched_sma": float(stats_sma.buckets_fetched),
            "buckets_fetched_scan": float(stats_scan.buckets_fetched),
            "reduction": 1.0
            - stats_sma.buckets_fetched / max(stats_scan.buckets_fetched, 1),
            "result_tuples": float(len(with_sma)),
        }
    return ExperimentResult(
        exp_id="E8",
        title=f"Semi-join input reduction via SMAs (SF={scale_factor})",
        headers=["strategy", "buckets fetched", "buckets skipped", "result tuples"],
        rows=rows,
        paper_reference="Section 4 (SMAs encompassing semi-joins)",
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E9 — maintenance cost (Section 2.1)
# ----------------------------------------------------------------------

def exp_maintenance(scale_factor: float = 0.005, seed: int = 3) -> ExperimentResult:
    with ScratchCatalog() as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        table = loaded.table
        maintainer = SmaMaintainer(table, [loaded.sma_set])

        config = GenConfig(scale_factor=scale_factor, seed=seed)
        fresh = generate_tables(config, ("LINEITEM",))["LINEITEM"]
        fresh = fresh[np.argsort(fresh["L_SHIPDATE"], kind="stable")][:16384]

        before = catalog.stats.snapshot()
        maintainer.insert(fresh)
        insert_stats = catalog.stats.snapshot() - before
        data_pages = (
            len(fresh) + table.layout.tuples_per_page - 1
        ) // table.layout.tuples_per_page
        sma_writes_insert = insert_stats.page_writes - data_pages

        cutoff = int_to_date(int(fresh["L_SHIPDATE"][64]))
        before = catalog.stats.snapshot()
        updated = maintainer.update_where(
            cmp("L_SHIPDATE", "=", cutoff), {"L_QUANTITY": 1.0}
        )
        update_stats = catalog.stats.snapshot() - before

        rows = [
            (
                f"bulk insert of {len(fresh)} tuples",
                insert_stats.page_writes,
                f"{insert_stats.page_writes / max(len(fresh), 1):.4f}",
                f"~{data_pages} data pages + {max(sma_writes_insert, 0)} SMA pages",
            ),
            (
                f"update of {updated} tuples",
                update_stats.page_writes,
                f"{update_stats.page_writes / max(updated, 1):.2f}",
                "bucket rewrite + <=1 SMA page per touched SMA entry",
            ),
        ]
        metrics = {
            "insert_writes_per_tuple": insert_stats.page_writes / max(len(fresh), 1),
            "sma_write_overhead": max(sma_writes_insert, 0) / max(data_pages, 1),
            "updated_tuples": float(updated),
        }
    return ExperimentResult(
        exp_id="E9",
        title="Maintenance cost: inserts and updates",
        headers=["operation", "page writes", "writes/tuple", "breakdown"],
        rows=rows,
        paper_reference="Section 2.1 (bulkload ~1 SMA page per 1000 data "
        "pages; at most one additional page access per updated tuple)",
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# E10 — bucket-size trade-off (Section 4)
# ----------------------------------------------------------------------

def exp_bucket_size(
    scale_factor: float = 0.02,
    pages_per_bucket: tuple[int, ...] = (1, 2, 4, 8, 16),
    disk: DiskModel = PAPER_DISK,
) -> ExperimentResult:
    rows = []
    sim_by_ppb = {}
    sma_pages_by_ppb = {}
    for ppb in pages_per_bucket:
        with ScratchCatalog(buffer_pages=256) as catalog:
            loaded = load_lineitem(
                catalog,
                scale_factor=scale_factor,
                clustering="toc",
                pages_per_bucket=ppb,
                lag_std=40.0,
            )
            max_values = loaded.sma_set.files_of("max")[()].values(charge=False)
            cutoff = int_to_date(int(np.median(max_values)))
            session = Session(catalog, disk)
            query = query1(cutoff=cutoff)
            session.execute(query, mode="sma", cold=True)  # warm the SMA files
            result = session.execute(query, mode="sma")
            sim_by_ppb[ppb] = result.simulated_seconds
            sma_pages_by_ppb[ppb] = loaded.sma_set.total_pages
            rows.append(
                (
                    ppb,
                    loaded.table.num_buckets,
                    loaded.sma_set.total_pages,
                    f"{result.plan.fraction_ambivalent or 0.0:.3f}",
                    human_seconds(result.simulated_seconds),
                )
            )
    metrics = {
        "sma_pages_ppb1": float(sma_pages_by_ppb[pages_per_bucket[0]]),
        "sma_pages_ppb_max": float(sma_pages_by_ppb[pages_per_bucket[-1]]),
        "sim_ppb1": sim_by_ppb[pages_per_bucket[0]],
        "sim_ppb_max": sim_by_ppb[pages_per_bucket[-1]],
    }
    return ExperimentResult(
        exp_id="E10",
        title=f"Bucket-size trade-off on imperfectly clustered data (SF={scale_factor})",
        headers=["pages/bucket", "buckets", "SMA pages", "ambivalent", "Q1 SMA (sim)"],
        rows=rows,
        paper_reference="Section 4 (bucket-size tuning trade-off)",
        notes=[
            "small buckets: more SMA I/O; large buckets: more ambivalent "
            "data to re-scan — the paper's stated trade-off",
        ],
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# extensions beyond the paper's tables
# ----------------------------------------------------------------------

def exp_query6(
    scale_factor: float = 0.02, disk: DiskModel = PAPER_DISK
) -> ExperimentResult:
    """Query 6 — conjunctive multi-attribute grading (versatility claim)."""
    with ScratchCatalog(buffer_pages=512) as catalog:
        loaded = load_lineitem(
            catalog,
            scale_factor=scale_factor,
            clustering="sorted",
            sma_definitions=query6_sma_definitions(),
            sma_set_name="q6",
        )
        session = Session(catalog, disk)
        query = query6()
        result_scan = session.execute(query, mode="scan", cold=True)
        result_sma = session.execute(query, mode="sma", cold=True)
        assert result_scan.rows[0][1] == result_sma.rows[0][1]  # MATCHES equal
        rows = [
            (
                "full scan",
                human_seconds(result_scan.simulated_seconds),
                result_scan.stats.buckets_fetched,
                result_scan.rows[0][1],
            ),
            (
                "SMA plan",
                human_seconds(result_sma.simulated_seconds),
                result_sma.stats.buckets_fetched,
                result_sma.rows[0][1],
            ),
        ]
        metrics = {
            "speedup": result_scan.simulated_seconds / result_sma.simulated_seconds,
            "fraction_ambivalent": result_sma.plan.fraction_ambivalent or 0.0,
            "matches": float(result_sma.rows[0][1]),
        }
    return ExperimentResult(
        exp_id="X1",
        title=f"Query 6: conjunctive grading on three attributes (SF={scale_factor})",
        headers=["strategy", "simulated", "buckets fetched", "matches"],
        rows=rows,
        paper_reference="Section 3.1 (and/or combination of partitionings)",
        metrics=metrics,
    )


def exp_btree_uselessness(
    scale_factor: float = 0.01, disk: DiskModel = PAPER_DISK
) -> ExperimentResult:
    """The Section 1 argument: at 95–97% selectivity an unclustered
    B+-tree turns sequential I/O into random I/O."""
    with ScratchCatalog(buffer_pages=256) as catalog:
        loaded = load_lineitem(
            catalog,
            scale_factor=scale_factor,
            clustering="uniform",  # index is unclustered w.r.t. physical order
            build_smas=False,
        )
        table = loaded.table
        btree = BPlusTree.build("ship_idx", table, "L_SHIPDATE", catalog.pool)
        cutoff = date_to_int(QUERY1_BASE_DATE) - 90

        catalog.go_cold()
        before = catalog.stats.snapshot()
        from repro.lang.predicate import CmpOp

        rids = btree.search_cmp(CmpOp.LE, cutoff)
        # Fetch in key order — the index access pattern.
        fetched = btree.fetch(table, rids)
        btree_stats = catalog.stats.snapshot() - before

        catalog.go_cold()
        before = catalog.stats.snapshot()
        from repro.baselines.fullscan import scan_count

        matched = scan_count(table, cmp("L_SHIPDATE", "<=", int_to_date(cutoff)))
        scan_stats = catalog.stats.snapshot() - before
        assert matched == len(fetched)

        selectivity = matched / table.num_records
        rows = [
            (
                "B+-tree rid fetch",
                human_seconds(disk.seconds(btree_stats)),
                btree_stats.random_page_reads + btree_stats.skip_page_reads,
                btree_stats.sequential_page_reads,
            ),
            (
                "sequential scan",
                human_seconds(disk.seconds(scan_stats)),
                scan_stats.random_page_reads + scan_stats.skip_page_reads,
                scan_stats.sequential_page_reads,
            ),
        ]
        metrics = {
            "slowdown": disk.seconds(btree_stats) / disk.seconds(scan_stats),
            "selectivity": selectivity,
        }
    return ExperimentResult(
        exp_id="X2",
        title=f"Unclustered B+-tree at {selectivity:.0%} selectivity",
        headers=["strategy", "simulated", "random+skip reads", "sequential reads"],
        rows=rows,
        paper_reference="Section 1 ('the only effect of using an index is to "
        "turn sequential I/O into random I/O')",
        metrics=metrics,
    )


def exp_modern_hardware(scale_factor: float = 0.02) -> ExperimentResult:
    """Ablation: the same Query 1 comparison under an NVMe-era model."""
    rows = []
    metrics = {}
    for label, disk in (("1998 Barracuda", PAPER_DISK), ("2020s NVMe", MODERN_DISK)):
        with ScratchCatalog(buffer_pages=512) as catalog:
            loaded = load_lineitem(
                catalog, scale_factor=scale_factor, clustering="sorted"
            )
            session = Session(catalog, disk)
            query = query1()
            result_scan = session.execute(query, mode="scan", cold=True)
            result_sma = session.execute(query, mode="sma", cold=True)
            speedup = result_scan.simulated_seconds / result_sma.simulated_seconds
            rows.append(
                (
                    label,
                    human_seconds(result_scan.simulated_seconds),
                    human_seconds(result_sma.simulated_seconds),
                    f"{speedup:.1f}x",
                )
            )
            key = "speedup_1998" if "1998" in label else "speedup_modern"
            metrics[key] = speedup
    return ExperimentResult(
        exp_id="X3",
        title="Hardware ablation: SMA advantage then and now",
        headers=["hardware model", "scan (sim)", "SMA (sim)", "speedup"],
        rows=rows,
        paper_reference="(extension) — why zone maps survived 25 years",
        metrics=metrics,
    )


def exp_projection_index(
    scale_factor: float = 0.01, disk: DiskModel = PAPER_DISK
) -> ExperimentResult:
    """SMAs vs the projection index they generalize (Section 1/2.2)."""
    with ScratchCatalog(buffer_pages=512) as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        table = loaded.table
        projection = ProjectionIndex.build(
            table, "L_SHIPDATE", os.path.join(catalog.root_dir, "ship.proj")
        )
        cutoff = int_to_date(date_to_int(QUERY1_BASE_DATE) - 90)
        predicate = cmp("L_SHIPDATE", "<=", cutoff).bind(table.schema)

        catalog.go_cold()
        before = catalog.stats.snapshot()
        positions = projection.matching_positions(predicate)
        projection_stats = catalog.stats.snapshot() - before

        catalog.go_cold()
        before = catalog.stats.snapshot()
        partitioning = loaded.sma_set.partition(predicate)
        sma_stats = catalog.stats.snapshot() - before

        min_file = loaded.sma_set.files_of("min")[()]
        max_file = loaded.sma_set.files_of("max")[()]
        rows = [
            (
                "projection index (per-tuple values)",
                projection.num_pages,
                projection_stats.page_reads,
                f"{len(positions)} matching positions",
            ),
            (
                "min+max SMAs (per-bucket values)",
                min_file.num_pages + max_file.num_pages,
                sma_stats.page_reads,
                f"{partitioning.num_qualifying} q / "
                f"{partitioning.num_ambivalent} a buckets",
            ),
        ]
        metrics = {
            "projection_pages": float(projection.num_pages),
            "sma_pages": float(min_file.num_pages + max_file.num_pages),
            "page_ratio": projection.num_pages
            / max(min_file.num_pages + max_file.num_pages, 1),
        }
    return ExperimentResult(
        exp_id="X4",
        title="Projection index vs min/max SMAs for predicate evaluation",
        headers=["structure", "size (pages)", "pages read", "result"],
        rows=rows,
        paper_reference="Section 1 (SMAs generalize projection indexes [16])",
        notes=["per-bucket summaries cost ~tuples_per_bucket x less I/O"],
        metrics=metrics,
    )


def exp_versatility(
    scale_factor: float = 0.02,
    num_queries: int = 20,
    seed: int = 17,
    disk: DiskModel = PAPER_DISK,
) -> ExperimentResult:
    """One SMA set, many queries — the flexibility argument of §2.3.

    "If another query with restrictions on any of the attributes
    aggregated in some SMA occures, the SMA can be used to more
    efficiently answer the query."  We fire a batch of random ad-hoc
    range/aggregate queries (different cutoffs, operators, groupings and
    aggregate subsets) at the single Figure 4 SMA set and report how
    many the planner serves from SMAs and the aggregate speedup.  A data
    cube built for Query 1 alone can serve none of the shifted-range
    variants (its dimensions fix the answerable selections).
    """
    from repro.core.aggregates import average
    from repro.query.query import AggregateQuery, OutputAggregate
    from repro.tpcd.distributions import END_INT, START_INT

    rng = np.random.default_rng(seed)
    with ScratchCatalog(buffer_pages=256) as catalog:
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        session = Session(catalog, disk)
        pool_of_aggregates = [
            OutputAggregate("SUM_QTY", total(col("L_QUANTITY"))),
            OutputAggregate("AVG_DISC", average(col("L_DISCOUNT"))),
            OutputAggregate("SUM_BASE", total(col("L_EXTENDEDPRICE"))),
            OutputAggregate("N", count_star()),
        ]
        served = 0
        speedups = []
        rows = []
        for i in range(num_queries):
            cutoff = int_to_date(int(rng.integers(START_INT, END_INT)))
            op = str(rng.choice(["<", "<=", ">", ">="]))
            chosen = rng.choice(
                len(pool_of_aggregates), size=rng.integers(1, 4), replace=False
            )
            query = AggregateQuery(
                table="LINEITEM",
                aggregates=tuple(pool_of_aggregates[j] for j in sorted(chosen)),
                where=cmp("L_SHIPDATE", op, cutoff),
                group_by=("L_RETURNFLAG", "L_LINESTATUS"),
            )
            auto = session.execute(query, cold=True)
            scan = session.execute(query, mode="scan", cold=True)
            if auto.plan.strategy == "sma_gaggr":
                served += 1
            speedups.append(
                scan.simulated_seconds / max(auto.simulated_seconds, 1e-12)
            )
            if i < 5:  # show a sample of the batch
                rows.append(
                    (
                        f"L_SHIPDATE {op} {cutoff}",
                        len(query.aggregates),
                        auto.plan.strategy,
                        f"{speedups[-1]:.1f}x",
                    )
                )
        rows.append(
            (
                f"... {num_queries} ad-hoc queries total",
                "-",
                f"{served}/{num_queries} SMA-served",
                f"geomean {float(np.exp(np.log(speedups).mean())):.1f}x",
            )
        )
        metrics = {
            "fraction_served": served / num_queries,
            "geomean_speedup": float(np.exp(np.log(speedups).mean())),
            "min_speedup": float(min(speedups)),
        }
    return ExperimentResult(
        exp_id="X7",
        title=f"Versatility: one Figure 4 SMA set vs {num_queries} ad-hoc queries",
        headers=["query", "#aggs", "plan", "speedup (sim)"],
        rows=rows,
        paper_reference="Section 2.3 (flexibility vs data cubes)",
        notes=[
            "a Query-1 data cube answers only its own fixed selection "
            "dimensions; the SMA set serves every shifted variant",
        ],
        metrics=metrics,
    )


def exp_bitmap_vs_sma(
    scale_factor: float = 0.01, disk: DiskModel = PAPER_DISK
) -> ExperimentResult:
    """Bitmaps vs count-SMAs on a low-cardinality predicate (intro, [15]).

    Both answer ``COUNT(*) WHERE L_RETURNFLAG = 'R'`` without touching
    the relation; only SMAs also answer the SUM variant from
    materialized aggregates, while the bitmap must fetch every matching
    tuple.
    """
    from repro.baselines.bitmap import BitmapIndex
    from repro.lang.predicate import CmpOp

    with ScratchCatalog(buffer_pages=512) as catalog:
        definitions = [
            SmaDefinition("cnt_rf", "LINEITEM", count_star(), ("L_RETURNFLAG",)),
            SmaDefinition(
                "qty_rf", "LINEITEM", total(col("L_QUANTITY")), ("L_RETURNFLAG",)
            ),
        ]
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted",
            sma_definitions=definitions, sma_set_name="rf",
        )
        table = loaded.table
        bitmap = BitmapIndex.build(
            table, "L_RETURNFLAG", os.path.join(catalog.root_dir, "rf.bmp")
        )

        # COUNT via bitmap: popcount, no relation access.
        catalog.go_cold()
        before = catalog.stats.snapshot()
        bitmap_count = bitmap.count(CmpOp.EQ, b"R")
        bitmap_stats = catalog.stats.snapshot() - before

        # COUNT via count-SMA: sum one group's per-bucket counts.
        catalog.go_cold()
        before = catalog.stats.snapshot()
        count_files = loaded.sma_set.files_of("cnt_rf")
        sma_count = int(count_files[("R",)].values().sum())
        sma_count_stats = catalog.stats.snapshot() - before
        assert bitmap_count == sma_count

        # SUM(L_QUANTITY) via sum-SMA: materialized; bitmap needs the
        # base tuples (positions -> scattered bucket fetches).
        catalog.go_cold()
        before = catalog.stats.snapshot()
        sma_sum = float(
            loaded.sma_set.files_of("qty_rf")[("R",)].values().sum()
        )
        sma_sum_stats = catalog.stats.snapshot() - before

        catalog.go_cold()
        before = catalog.stats.snapshot()
        positions = bitmap.positions(CmpOp.EQ, b"R")
        per_bucket = table.layout.tuples_per_bucket
        stats = catalog.stats
        bitmap_sum = 0.0
        for bucket_no in np.unique(positions // per_bucket):
            records = table.read_bucket(int(bucket_no))
            stats.buckets_fetched += 1
            stats.tuples_scanned += len(records)
            mask = records["L_RETURNFLAG"] == b"R"
            bitmap_sum += float(records["L_QUANTITY"][mask].sum())
        bitmap_sum_stats = catalog.stats.snapshot() - before
        assert bitmap_sum == pytest_approx(sma_sum)

        rows = [
            (
                "COUNT via bitmap popcount",
                human_seconds(disk.seconds(bitmap_stats)),
                bitmap_stats.buckets_fetched,
                bitmap_count,
            ),
            (
                "COUNT via count-SMA",
                human_seconds(disk.seconds(sma_count_stats)),
                sma_count_stats.buckets_fetched,
                sma_count,
            ),
            (
                "SUM via sum-SMA (materialized)",
                human_seconds(disk.seconds(sma_sum_stats)),
                sma_sum_stats.buckets_fetched,
                round(sma_sum, 2),
            ),
            (
                "SUM via bitmap + tuple fetch",
                human_seconds(disk.seconds(bitmap_sum_stats)),
                bitmap_sum_stats.buckets_fetched,
                round(bitmap_sum, 2),
            ),
        ]
        metrics = {
            "count_parity": disk.seconds(bitmap_stats)
            / max(disk.seconds(sma_count_stats), 1e-12),
            "sum_advantage": disk.seconds(bitmap_sum_stats)
            / max(disk.seconds(sma_sum_stats), 1e-12),
            "bitmap_bytes": float(bitmap.size_bytes),
            "sma_bytes": float(loaded.sma_set.total_bytes),
        }
    return ExperimentResult(
        exp_id="X6",
        title="Bitmap index vs SMAs on a low-cardinality attribute",
        headers=["strategy", "simulated", "buckets fetched", "answer"],
        rows=rows,
        paper_reference="Section 1 (bitmaps [15] among applied index structures)",
        notes=[
            "bitmaps locate tuples, SMAs answer aggregates: counts tie, "
            "sums need no base access with SMAs",
        ],
        metrics=metrics,
    )


def pytest_approx(value: float, rel: float = 1e-9):
    """Tiny local stand-in to avoid importing pytest in library code."""

    class _Approx:
        def __eq__(self, other: object) -> bool:
            return abs(float(other) - value) <= rel * max(abs(value), 1.0)

    return _Approx()


def exp_scaling_linearity(
    scale_factors: tuple[float, ...] = (0.01, 0.02, 0.04),
    disk: DiskModel = PAPER_DISK,
) -> ExperimentResult:
    """Creation and query costs are linear in the bucket count.

    "Since creation and query processing times are also linear in the
    number of buckets, it suffices to give the performance for a single
    sufficiently large database" (Section 2.4) — the claim that also
    justifies this reproduction's SF=1 projections.  We measure Q1 and
    the SMA build at three scales and fit cost = a·buckets + b.
    """
    buckets: list[float] = []
    scan_costs: list[float] = []
    sma_costs: list[float] = []
    build_costs: list[float] = []
    rows = []
    for scale_factor in scale_factors:
        with ScratchCatalog(buffer_pages=256) as catalog:
            loaded = load_lineitem(
                catalog, scale_factor=scale_factor, clustering="sorted"
            )
            build_stats = IoStats()
            for report in loaded.build_reports:
                build_stats.merge(report.stats)
            session = Session(catalog, disk)
            query = query1()
            result_scan = session.execute(query, mode="scan", cold=True)
            result_sma = session.execute(query, mode="sma", cold=True)
            buckets.append(float(loaded.table.num_buckets))
            scan_costs.append(result_scan.simulated_seconds)
            sma_costs.append(result_sma.simulated_seconds)
            build_costs.append(disk.seconds(build_stats))
            rows.append(
                (
                    scale_factor,
                    loaded.table.num_buckets,
                    human_seconds(scan_costs[-1]),
                    human_seconds(sma_costs[-1]),
                    human_seconds(build_costs[-1]),
                )
            )

    def r_squared(ys: list[float]) -> float:
        xs = np.asarray(buckets)
        ys_arr = np.asarray(ys)
        slope, intercept = np.polyfit(xs, ys_arr, 1)
        predicted = slope * xs + intercept
        residual = ((ys_arr - predicted) ** 2).sum()
        total_var = ((ys_arr - ys_arr.mean()) ** 2).sum()
        return 1.0 - residual / total_var if total_var else 1.0

    metrics = {
        "r2_scan": r_squared(scan_costs),
        "r2_sma": r_squared(sma_costs),
        "r2_build": r_squared(build_costs),
    }
    return ExperimentResult(
        exp_id="X5",
        title="Linearity in the number of buckets",
        headers=["SF", "buckets", "Q1 scan (sim)", "Q1 SMA cold (sim)", "build (sim)"],
        rows=rows,
        paper_reference="Section 2.4 (scaling argument)",
        notes=["r² of the linear fits should be ~1.0, validating the "
               "SF=1 projections used throughout EXPERIMENTS.md"],
        metrics=metrics,
    )


from repro.bench.caching import exp_result_cache
from repro.bench.concurrency import (
    exp_concurrency_throughput,
    exp_ingest_concurrency,
    exp_scan_parallelism,
)
from repro.bench.sharding import exp_shard_scaling

#: Every experiment, in the DESIGN.md index order — drives EXPERIMENTS.md
#: regeneration and the full bench run.
ALL_EXPERIMENTS = (
    exp_sma_creation,
    exp_space_overhead,
    exp_datacube_space,
    exp_query1_speedup,
    exp_breakeven_sweep,
    exp_diagonal_distribution,
    exp_sma_file_ratio,
    exp_hierarchical,
    exp_semijoin,
    exp_maintenance,
    exp_bucket_size,
    exp_query6,
    exp_btree_uselessness,
    exp_modern_hardware,
    exp_projection_index,
    exp_bitmap_vs_sma,
    exp_scaling_linearity,
    exp_versatility,
    exp_concurrency_throughput,
    exp_scan_parallelism,
    exp_shard_scaling,
    exp_ingest_concurrency,
    exp_result_cache,
)
