"""Command-line interface: ``python -m repro <command>``.

A small operational surface over the library so the reproduction can be
driven without writing Python:

============  ========================================================
command       does
============  ========================================================
load          generate TPC-D data into a catalog directory (+ Q1 SMAs)
define        build SMAs from a ``define sma`` script (file or inline)
query         run one SELECT against a catalog, print rows + both clocks
explain       plan one SELECT without running it, print the full plan
              (against a sharded root: the routing + per-shard plans)
trace         run one SELECT with tracing on, print the span tree
info          list tables, SMA sets and sizes of a catalog
bench         run the paper experiments (all, or a subset)
serve         replay a concurrent workload through the query service;
              with ``--shards N`` scatter-gather across worker processes
shard-init    partition a catalog into N shard catalogs + manifest
shard-worker  serve one shard catalog over a local socket
verify        check page checksums + SMA contents; --repair rebuilds SMAs
============  ========================================================

Examples::

    python -m repro load --db ./db --sf 0.01 --clustering sorted
    python -m repro query --db ./db "SELECT COUNT(*) AS n FROM LINEITEM \
        WHERE L_SHIPDATE <= DATE '1998-09-02'"
    python -m repro explain --db ./db "SELECT COUNT(*) AS n FROM LINEITEM \
        WHERE L_SHIPDATE <= DATE '1998-09-02'"
    python -m repro define --db ./db --set bounds \
        --sql "define sma lo select min(L_SHIPDATE) from LINEITEM"
    python -m repro bench --only E4,F5
    python -m repro serve --db ./db --workers 4 --clients 8 --report
    python -m repro verify --db ./db --repair
    python -m repro serve --db ./db --faults "transient:path=.heap,p=0.05"
    python -m repro shard-init --db ./db --out ./db-sharded --shards 4
    python -m repro serve --db ./db-sharded --shards 4 --clients 16 --report
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import human_bytes, human_seconds
from repro.query.session import Session
from repro.storage.catalog import Catalog


def _open_catalog(
    path: str, buffer_pages: int, stripes: int | None = None
) -> Catalog:
    return Catalog.discover(path, buffer_pages=buffer_pages, stripes=stripes)


def cmd_load(args: argparse.Namespace) -> int:
    from repro.tpcd.loader import load_lineitem, load_tpcd

    catalog = _open_catalog(args.db, args.buffer_pages)
    if catalog.has_table("LINEITEM"):
        print("error: catalog already contains LINEITEM", file=sys.stderr)
        return 1
    if args.tables:
        names = tuple(t.strip().upper() for t in args.tables.split(","))
        loaded = load_tpcd(
            catalog, scale_factor=args.sf, tables=names,
            clustering=args.clustering, seed=args.seed,
        )
        for name, table in loaded.items():
            print(f"loaded {name}: {table.num_records} tuples, "
                  f"{table.num_buckets} buckets")
    else:
        loaded = load_lineitem(
            catalog, scale_factor=args.sf, clustering=args.clustering,
            seed=args.seed, build_smas=not args.no_smas,
        )
        print(f"loaded LINEITEM: {loaded.table.num_records} tuples, "
              f"{loaded.table.num_buckets} buckets, "
              f"{human_bytes(loaded.table.size_bytes)}")
        if loaded.sma_set is not None:
            print(f"built SMA set 'q1': {loaded.sma_set.num_files} files, "
                  f"{human_bytes(loaded.sma_set.total_bytes)} "
                  f"({loaded.sma_set.total_bytes / loaded.table.size_bytes:.1%} "
                  f"of the relation)")
    catalog.close()
    return 0


def cmd_define(args: argparse.Namespace) -> int:
    if bool(args.sql) == bool(args.file):
        print("error: pass exactly one of --sql or --file", file=sys.stderr)
        return 1
    script = args.sql
    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            script = f.read()
    catalog = _open_catalog(args.db, args.buffer_pages)
    session = Session(catalog)
    sma_set, reports = session.define_smas(script, set_name=args.set)
    for report in reports:
        print(f"built sma {report.definition_name}: {report.num_files} "
              f"file(s), {report.pages} page(s), "
              f"{human_seconds(report.wall_seconds)} wall")
    print(f"set {sma_set.name!r}: {sma_set.num_files} SMA-files, "
          f"{human_bytes(sma_set.total_bytes)}")
    catalog.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    catalog = _open_catalog(args.db, args.buffer_pages, args.stripes)
    session = Session(catalog, scan_workers=args.scan_workers,
                      scan_backend=args.scan_backend)
    result = session.sql(args.sql, mode=args.mode, cold=args.cold)
    print(result)
    print()
    print(result.plan)
    print(f"stats: {result.stats.page_reads} page reads "
          f"({result.stats.sequential_page_reads} seq / "
          f"{result.stats.skip_page_reads} skip / "
          f"{result.stats.random_page_reads} rnd), "
          f"{result.stats.buffer_hits} hits, "
          f"{result.stats.tuples_scanned} tuples scanned, "
          f"{result.stats.sma_entries_read} SMA entries")
    catalog.close()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.errors import ParseError
    from repro.query.query import AggregateQuery, ExplainQuery, ScanQuery
    from repro.sql.parser import parse_statement

    try:
        statement = parse_statement(args.sql)
    except ParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if isinstance(statement, ExplainQuery):  # "EXPLAIN SELECT ..." also works
        statement = statement.query
    if not isinstance(statement, (AggregateQuery, ScanQuery)):
        print("error: explain takes a SELECT statement", file=sys.stderr)
        return 1
    from repro.shard.manifest import ShardManifest

    if ShardManifest.exists(args.db):
        from repro.shard.explain import render_routing

        print(render_routing(
            args.db, statement, mode=args.mode, sma_set=args.sma_set,
            scan_workers=args.scan_workers, buffer_pages=args.buffer_pages,
        ))
        return 0
    catalog = _open_catalog(args.db, args.buffer_pages, args.stripes)
    session = Session(catalog, scan_workers=args.scan_workers,
                      scan_backend=args.scan_backend)
    explanation = session.explain(
        statement, mode=args.mode, sma_set=args.sma_set
    )
    print(explanation.render())
    catalog.close()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, render_span_tree

    if args.distributed:
        return _trace_distributed(args)
    catalog = _open_catalog(args.db, args.buffer_pages, args.stripes)
    tracer = Tracer()
    session = Session(catalog, scan_workers=args.scan_workers,
                      scan_backend=args.scan_backend, tracer=tracer)
    result = session.sql(
        args.sql, mode=args.mode, sma_set=args.sma_set, cold=args.cold
    )
    root = tracer.last_trace()
    if root is None:
        print("error: no trace captured", file=sys.stderr)
        catalog.close()
        return 1
    print(render_span_tree(root))
    print()
    print(f"rows: {len(result.rows)}; "
          f"wall {human_seconds(result.wall_seconds)}; "
          f"simulated {human_seconds(result.simulated_seconds)}; "
          f"strategy {result.plan.strategy}")
    # Acceptance check: io-carrying leaf spans never nest and cover every
    # charge site, so their deltas must sum exactly to the query totals.
    leaf = root.io_total()
    total = result.stats
    exact = (
        leaf.page_reads == total.page_reads
        and leaf.buffer_hits == total.buffer_hits
        and leaf.tuples_scanned == total.tuples_scanned
        and leaf.buckets_skipped == total.buckets_skipped
    )
    print(f"io reconciliation: leaf spans {leaf.page_reads} reads / "
          f"{leaf.buffer_hits} hits / {leaf.tuples_scanned} tuples / "
          f"{leaf.buckets_skipped} skipped buckets; query totals "
          f"{total.page_reads} / {total.buffer_hits} / "
          f"{total.tuples_scanned} / {total.buckets_skipped} "
          f"-> {'exact' if exact else 'MISMATCH'}")
    catalog.close()
    return 0 if exact else 1


def _trace_distributed(args: argparse.Namespace) -> int:
    """``repro trace --distributed``: one merged tree across router +
    shard workers (+ scan-pool processes), reconciled byte-exactly.

    Launches one worker subprocess per shard of the sharded root, routes
    the query through a traced :class:`~repro.shard.router.ShardRouter`,
    prints the merged span tree and the per-counter reconciliation of
    remote leaf-span I/O against router-side query totals, and emits the
    per-query resource ledger.  Exits non-zero unless every counter
    matches exactly.
    """
    import json

    from repro.obs import EventLog, Tracer, render_span_tree
    from repro.obs.collect import build_ledger, reconcile
    from repro.shard.manifest import ShardManifest
    from repro.shard.router import (
        ShardRouter,
        launch_local_shards,
        stop_local_shards,
    )

    if not ShardManifest.exists(args.db):
        print(f"error: {args.db} is not a sharded root; "
              f"run `repro shard-init` first (or drop --distributed)",
              file=sys.stderr)
        return 1
    manifest = ShardManifest.load(args.db)
    events = EventLog(args.events) if args.events else None
    tracer = Tracer()
    processes = launch_local_shards(
        args.db,
        manifest=manifest,
        scan_workers=args.scan_workers,
        scan_backend=args.scan_backend,
        buffer_pages=args.buffer_pages,
    )
    try:
        with ShardRouter(
            [handle.endpoint for handle in processes],
            manifest=manifest,
            tracer=tracer,
            events=events,
        ) as router:
            result = router.execute(
                args.sql, mode=args.mode, sma_set=args.sma_set
            )
    finally:
        stop_local_shards(processes)
    root = tracer.last_trace()
    if root is None:
        if events is not None:
            events.close()
        print("error: no trace captured", file=sys.stderr)
        return 1
    print(render_span_tree(root))
    print()
    print(f"rows: {len(result.rows)}; "
          f"wall {human_seconds(result.wall_seconds)}; "
          f"strategy {result.plan.strategy}; "
          f"shards {manifest.num_shards}; "
          f"scan backend {args.scan_backend}")
    report = reconcile(root, result.stats)
    print(report.render())
    ledger = build_ledger(root)
    print(f"ledger: fan_out={ledger['fan_out']} "
          f"queue_wait={human_seconds(ledger['queue_wait_s'])} "
          f"spans={ledger['spans']}")
    for table, io in ledger["tables"].items():
        print(f"  {table}: {io['page_reads']} reads "
              f"({io['sma_page_reads']} sma / {io['heap_page_reads']} heap), "
              f"{io['buffer_hits']} hits, {io['tuples_scanned']} tuples")
    if events is not None:
        # The router already emitted query_ledger + trace events into
        # the log; we only need to flush it.
        events.close()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "trace": root.to_dict(),
                    "ledger": ledger,
                    "reconciliation": report.as_dict(),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"merged trace -> {args.json_out}")
    return 0 if report.exact else 1


def cmd_info(args: argparse.Namespace) -> int:
    catalog = _open_catalog(args.db, args.buffer_pages)
    for table in catalog.tables():
        print(f"table {table.name}: {table.num_records} tuples, "
              f"{table.num_buckets} buckets, {human_bytes(table.size_bytes)}"
              + (f", clustered on {table.clustered_on}"
                 if table.clustered_on else ""))
        for sma_set in catalog.sma_sets(table.name):
            print(f"  sma set {sma_set.name!r}: "
                  f"{len(sma_set.definitions)} definitions, "
                  f"{sma_set.num_files} files, "
                  f"{human_bytes(sma_set.total_bytes)}")
            for definition in sma_set.definitions.values():
                print(f"    {definition}")
    catalog.close()
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.verify import verify_catalog

    catalog = _open_catalog(args.db, args.buffer_pages)
    events = None
    if args.events:
        from repro.obs import EventLog

        events = EventLog(args.events)
    try:
        report = verify_catalog(catalog, repair=args.repair, events=events)
    finally:
        if events is not None:
            events.close()
        catalog.close()
    print(report.render())
    return 0 if report.ok else 1


def _build_injector(args: argparse.Namespace):
    """A FaultInjector from --faults/--fault-seed, or None."""
    if not getattr(args, "faults", None):
        return None
    from repro.storage.faults import FaultInjector, parse_fault_specs

    specs = parse_fault_specs(args.faults)
    return FaultInjector(seed=args.fault_seed, specs=specs)


def _report_faults(injector, args: argparse.Namespace) -> None:
    if injector is None:
        return
    print(f"faults: {injector.fired_count()} injected ({injector.describe()})")
    if getattr(args, "fault_events", None):
        injector.write_jsonl(args.fault_events)
        print(f"fault events -> {args.fault_events}")


def _trace_artifact_path(template: str, exp_id: str) -> str:
    """``traces.jsonl`` + ``C1`` -> ``traces_C1.jsonl`` (one per experiment)."""
    stem, dot, suffix = template.rpartition(".")
    if dot:
        return f"{stem}_{exp_id}.{suffix}"
    return f"{template}_{exp_id}"


def cmd_bench(args: argparse.Namespace) -> int:
    import inspect

    from repro.bench.experiments import ALL_EXPERIMENTS

    wanted = None
    if args.only:
        wanted = {piece.strip().upper() for piece in args.only.split(",")}
    injector = _build_injector(args)
    ran = 0
    renderings: list[str] = []
    for experiment in ALL_EXPERIMENTS:
        probe_id = _EXPERIMENT_IDS.get(experiment.__name__)
        if wanted is not None:
            # Cheap pre-filter on the function's exp id without running:
            # ids are stable and documented, so map via a dry attribute.
            if probe_id is None or probe_id not in wanted:
                continue
        kwargs = {}
        parameters = inspect.signature(experiment).parameters
        if injector is not None and "fault_injector" in parameters:
            kwargs["fault_injector"] = injector
        if getattr(args, "scan_backend", None) and "backends" in parameters:
            kwargs["backends"] = (args.scan_backend,)
        if "cache_entries" in parameters and getattr(args, "cache_entries", None):
            kwargs["cache_entries"] = args.cache_entries
        if "shared_scans" in parameters and getattr(args, "shared_scans", False):
            kwargs["shared_scans"] = True
        event_log = None
        if (
            args.trace_file
            and "event_log" in inspect.signature(experiment).parameters
        ):
            from repro.obs import EventLog

            path = _trace_artifact_path(
                args.trace_file, probe_id or experiment.__name__
            )
            event_log = EventLog(path)
            kwargs["event_log"] = event_log
        try:
            result = experiment(**kwargs)
        finally:
            if event_log is not None:
                event_log.close()
                stats = event_log.stats()
                print(f"trace artifact: {stats['written']} events "
                      f"({stats['dropped']} dropped) -> {path}")
        rendered = result.render()
        renderings.append(rendered)
        print()
        print(rendered)
        ran += 1
    if wanted is not None and ran == 0:
        print(f"error: no experiment matches {sorted(wanted)}; "
              f"ids: {sorted(set(_EXPERIMENT_IDS.values()))}", file=sys.stderr)
        return 1
    _report_faults(injector, args)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write("\n\n".join(renderings) + "\n")
        print(f"\nwrote {ran} experiment table(s) to {args.out}")
    return 0


def cmd_shard_init(args: argparse.Namespace) -> int:
    from repro.shard.partitioner import shard_init

    manifest = shard_init(
        args.db, args.out, args.shards, buffer_pages=args.buffer_pages
    )
    print(f"sharded {args.db} -> {args.out}: {manifest.num_shards} shards")
    for table, spans in sorted(manifest.tables.items()):
        ranges = ", ".join(f"[{lo}, {hi})" for lo, hi in spans)
        print(f"  {table}: {ranges}")
    return 0


def cmd_shard_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.shard.worker import ShardWorker, run_worker_forever

    events = None
    if args.events:
        from repro.obs import EventLog

        events = EventLog(args.events)
    injector = _build_injector(args)
    worker = ShardWorker(
        args.shard_id,
        args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue,
        scan_workers=args.scan_workers,
        scan_backend=args.scan_backend,
        buffer_pages=args.buffer_pages,
        fault_injector=injector,
        events=events,
    )
    # Graceful drain on SIGTERM (how launch_local_shards stops workers):
    # close() finishes in-flight queries and flushes the event log.
    signal.signal(signal.SIGTERM, lambda _sig, _frm: worker.close())
    try:
        run_worker_forever(worker)
    finally:
        if events is not None:
            events.close()
    return 0


def _serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N``: worker processes + scatter-gather router."""
    from repro.server import (
        WorkloadDriver,
        default_mix,
        render_metrics,
        render_workload,
    )
    from repro.shard import ShardManifest, ShardRouter, launch_local_shards
    from repro.shard.router import stop_local_shards

    manifest = ShardManifest.load(args.db)
    if args.shards != manifest.num_shards:
        print(f"error: sharded root {args.db} holds {manifest.num_shards} "
              f"shard(s), not {args.shards}; re-run `repro shard-init`",
              file=sys.stderr)
        return 1
    timeout = args.timeout if args.timeout and args.timeout > 0 else None
    event_log = None
    if args.trace_file:
        from repro.obs import EventLog

        event_log = EventLog(args.trace_file)
    processes = launch_local_shards(
        args.db,
        manifest=manifest,
        workers=args.workers,
        scan_workers=args.scan_workers,
        queue_depth=args.queue,
        buffer_pages=args.buffer_pages,
        events_dir=args.shard_events,
        faults=args.faults,
        fault_seed=args.fault_seed,
    )
    try:
        with ShardRouter(
            [handle.endpoint for handle in processes],
            manifest=manifest,
            workers=args.workers,
            queue_depth=args.queue,
            default_timeout_s=timeout,
            events=event_log,
            result_cache=args.result_cache,
            cache_entries=args.cache_entries,
        ) as router:
            for shard_id, info in sorted(router.health().items()):
                state = ("up" if info.get("up")
                         else f"DOWN ({info.get('error')})")
                print(f"shard {shard_id}: {state}")
            server = None
            if args.metrics_port is not None:
                from repro.obs import MetricsServer

                server = MetricsServer(
                    router.observed_snapshot, port=args.metrics_port
                ).start()
                print(f"metrics: {server.url}/metrics  "
                      f"(also /healthz, /snapshot)")
            try:
                driver = WorkloadDriver(router, default_mix())
                if args.rate:
                    result = driver.run_open_loop(
                        rate_qps=args.rate, total=args.queries
                    )
                else:
                    per_client = max(1, args.queries // args.clients)
                    result = driver.run_closed_loop(
                        clients=args.clients, queries_per_client=per_client
                    )
                if server is not None and args.linger:
                    import time

                    print(f"lingering {args.linger:g}s so the metrics "
                          f"endpoint stays scrapeable ...")
                    time.sleep(args.linger)
            finally:
                if server is not None:
                    server.close()
            fanout = router.scoreboard.snapshot()["fanout"]
            report_snapshot = router.observed_snapshot()
    finally:
        stop_local_shards(processes)
    if event_log is not None:
        event_log.close()
        stats = event_log.stats()
        print(f"trace events: {stats['written']} written "
              f"({stats['dropped']} dropped) -> {args.trace_file}")
    print(render_workload(result))
    print(f"fan-out: {fanout['scatter_queries']} scattered, "
          f"{fanout['subqueries_sent']} subqueries, "
          f"{fanout['gather_merges']} partial-state merges")
    if args.report:
        print()
        print(render_metrics(report_snapshot))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import (
        QueryService,
        WorkloadDriver,
        default_mix,
        render_metrics,
        render_workload,
    )

    if args.workers < 1 or args.queue < 1 or args.clients < 1 or args.queries < 1:
        print("error: --workers, --queue, --clients and --queries must be >= 1",
              file=sys.stderr)
        return 1
    if args.shards:
        return _serve_sharded(args)
    catalog = _open_catalog(args.db, args.buffer_pages, args.stripes)
    if not catalog.has_table("LINEITEM"):
        print("error: catalog has no LINEITEM table; run `repro load` first",
              file=sys.stderr)
        catalog.close()
        return 1
    timeout = args.timeout if args.timeout and args.timeout > 0 else None

    event_log = None
    tracer = None
    if args.trace_file:
        from repro.obs import EventLog, Tracer

        event_log = EventLog(args.trace_file)
        tracer = Tracer()
    injector = _build_injector(args)
    if injector is not None:
        catalog.install_fault_injector(injector)
        if event_log is not None:
            def _on_retry(file_id, page_no, attempt, exc,
                          _log=event_log):  # noqa: ANN001
                _log.emit(
                    "read_retry",
                    file=str(file_id),
                    page=page_no,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
            catalog.pool.on_retry = _on_retry
    slow_query_s = args.slow_ms / 1000.0 if args.slow_ms else None
    with QueryService(
        catalog,
        workers=args.workers,
        queue_depth=args.queue,
        default_timeout_s=timeout,
        scan_workers=args.scan_workers,
        scan_backend=args.scan_backend,
        tracer=tracer,
        events=event_log,
        slow_query_s=slow_query_s,
        result_cache=args.result_cache,
        cache_entries=args.cache_entries,
        shared_scans=args.shared_scans,
    ) as service:
        server = None
        if args.metrics_port is not None:
            from repro.obs import MetricsServer

            server = MetricsServer(
                service.observed_snapshot, port=args.metrics_port
            ).start()
            print(f"metrics: {server.url}/metrics  "
                  f"(also /healthz, /snapshot)")
        try:
            driver = WorkloadDriver(service, default_mix())
            if args.rate:
                result = driver.run_open_loop(
                    rate_qps=args.rate, total=args.queries
                )
            else:
                clients = args.clients
                per_client = max(1, args.queries // clients)
                result = driver.run_closed_loop(
                    clients=clients, queries_per_client=per_client
                )
            if server is not None and args.linger:
                import time

                print(f"lingering {args.linger:g}s so the metrics "
                      f"endpoint stays scrapeable ...")
                time.sleep(args.linger)
            # The report snapshot comes from observed_snapshot so the
            # result-cache / shared-scan sections make it into --report.
            report_snapshot = service.observed_snapshot()
        finally:
            if server is not None:
                server.close()
    if event_log is not None:
        event_log.close()
        stats = event_log.stats()
        print(f"trace events: {stats['written']} written "
              f"({stats['dropped']} dropped) -> {args.trace_file}")
    print(render_workload(result))
    if args.report:
        print()
        print(render_metrics(report_snapshot))
    _report_faults(injector, args)
    catalog.close()
    return 0


_EXPERIMENT_IDS = {
    "exp_sma_creation": "E1",
    "exp_space_overhead": "E2",
    "exp_datacube_space": "E3",
    "exp_query1_speedup": "E4",
    "exp_breakeven_sweep": "F5",
    "exp_diagonal_distribution": "F2",
    "exp_sma_file_ratio": "E5",
    "exp_hierarchical": "E7",
    "exp_semijoin": "E8",
    "exp_maintenance": "E9",
    "exp_bucket_size": "E10",
    "exp_query6": "X1",
    "exp_btree_uselessness": "X2",
    "exp_modern_hardware": "X3",
    "exp_projection_index": "X4",
    "exp_scaling_linearity": "X5",
    "exp_bitmap_vs_sma": "X6",
    "exp_versatility": "X7",
    "exp_concurrency_throughput": "C1",
    "exp_scan_parallelism": "C2",
    "exp_shard_scaling": "C3",
    "exp_ingest_concurrency": "C4",
    "exp_result_cache": "C5",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Small Materialized Aggregates (VLDB 1998) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", required=True, help="catalog directory")
        p.add_argument("--buffer-pages", type=int, default=2048)
        p.add_argument("--stripes", type=int, default=None,
                       help="buffer pool lock stripes (default: sized "
                       "automatically from --buffer-pages)")

    p_load = sub.add_parser("load", help="generate and load TPC-D data")
    add_db(p_load)
    p_load.add_argument("--sf", type=float, default=0.01, help="scale factor")
    p_load.add_argument(
        "--clustering", choices=("sorted", "toc", "uniform"), default="sorted"
    )
    p_load.add_argument("--seed", type=int, default=42)
    p_load.add_argument("--tables", help="comma-separated table list "
                        "(default: LINEITEM with Q1 SMAs)")
    p_load.add_argument("--no-smas", action="store_true")
    p_load.set_defaults(func=cmd_load)

    p_define = sub.add_parser("define", help="build SMAs from a script")
    add_db(p_define)
    p_define.add_argument("--set", default="default", help="SMA set name")
    p_define.add_argument("--sql", help="inline define sma script")
    p_define.add_argument("--file", help="path to a define sma script")
    p_define.set_defaults(func=cmd_define)

    p_query = sub.add_parser(
        "query", help="run one SQL statement (SELECT or INSERT/UPDATE/DELETE)"
    )
    add_db(p_query)
    p_query.add_argument("sql", help="SQL statement")
    p_query.add_argument("--mode", choices=("auto", "sma", "scan"), default="auto")
    p_query.add_argument("--cold", action="store_true")
    p_query.add_argument("--scan-workers", type=int, default=1,
                         help="morsel-scan threads for this query (default 1)")
    p_query.add_argument("--scan-backend", choices=("thread", "process"),
                         default="thread",
                         help="where morsels run: in-process threads or a "
                         "persistent worker-process pool (default thread)")
    p_query.set_defaults(func=cmd_query)

    p_explain = sub.add_parser(
        "explain", help="plan one SELECT without running it"
    )
    add_db(p_explain)
    p_explain.add_argument("sql", help="SELECT statement (an EXPLAIN prefix "
                           "is accepted and ignored)")
    p_explain.add_argument("--mode", choices=("auto", "sma", "scan"),
                           default="auto")
    p_explain.add_argument("--sma-set", default=None,
                           help="restrict the planner to one SMA set")
    p_explain.add_argument("--scan-workers", type=int, default=1,
                           help="morsel-scan threads the plan would use "
                           "(default 1)")
    p_explain.add_argument("--scan-backend", choices=("thread", "process"),
                           default="thread",
                           help="scan backend the plan would use "
                           "(default thread)")
    p_explain.set_defaults(func=cmd_explain)

    p_trace = sub.add_parser(
        "trace", help="run one SELECT with tracing on, print the span tree"
    )
    add_db(p_trace)
    p_trace.add_argument("sql", help="SELECT statement")
    p_trace.add_argument("--mode", choices=("auto", "sma", "scan"),
                         default="auto")
    p_trace.add_argument("--sma-set", default=None,
                         help="restrict the planner to one SMA set")
    p_trace.add_argument("--cold", action="store_true")
    p_trace.add_argument("--scan-workers", type=int, default=1,
                         help="morsel-scan threads for this query (default 1)")
    p_trace.add_argument("--scan-backend", choices=("thread", "process"),
                         default="thread",
                         help="where morsels run: in-process threads or a "
                         "persistent worker-process pool (default thread)")
    p_trace.add_argument("--distributed", action="store_true",
                         help="treat --db as a sharded root: launch its "
                         "shard workers, route the query, merge the remote "
                         "span trees into one tree and reconcile remote "
                         "leaf-span I/O against router-side totals")
    p_trace.add_argument("--json-out",
                         help="with --distributed: write the merged trace, "
                         "ledger and reconciliation report as JSON here")
    p_trace.add_argument("--events",
                         help="with --distributed: write router events "
                         "(incl. query_ledger and trace records) as JSONL "
                         "to this file")
    p_trace.set_defaults(func=cmd_trace)

    p_info = sub.add_parser("info", help="describe a catalog")
    add_db(p_info)
    p_info.set_defaults(func=cmd_info)

    def add_faults(p: argparse.ArgumentParser) -> None:
        p.add_argument("--faults",
                       help="semicolon-separated fault specs injected into "
                       "the buffer pool, e.g. "
                       "'transient:path=.heap,p=0.05;bit_flip:path=.sma,"
                       "count=1' (kinds: transient, short_read, latency, "
                       "bit_flip, torn_write)")
        p.add_argument("--fault-seed", type=int, default=0,
                       help="deterministic fault schedule seed (default 0)")
        p.add_argument("--fault-events",
                       help="write every injected fault as JSONL to this file")

    p_bench = sub.add_parser("bench", help="run the paper experiments")
    p_bench.add_argument("--only", help="comma-separated experiment ids "
                         "(e.g. E4,F5)")
    p_bench.add_argument("--out", help="also write the result tables to a file")
    p_bench.add_argument("--trace-file",
                         help="JSONL trace artifact template; experiments "
                         "that serve queries (C1, C2) write one file each, "
                         "e.g. traces.jsonl -> traces_C1.jsonl")
    p_bench.add_argument("--scan-backend", choices=("thread", "process"),
                         default=None,
                         help="restrict backend-aware experiments (C2) to "
                         "one scan backend (default: full backend grid)")
    p_bench.add_argument("--result-cache", action="store_true",
                         help="forwarded to caching-aware experiments (C5): "
                         "also report the cache-enabled cells")
    p_bench.add_argument("--cache-entries", type=int, default=256,
                         help="result cache capacity for caching-aware "
                         "experiments (default 256)")
    p_bench.add_argument("--shared-scans", action="store_true",
                         help="enable cooperative scan sharing in "
                         "caching-aware experiments")
    add_faults(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="replay a concurrent workload through the query service"
    )
    add_db(p_serve)
    p_serve.add_argument("--workers", type=int, default=4,
                         help="worker threads (default 4)")
    p_serve.add_argument("--queue", type=int, default=32,
                         help="admission queue depth (default 32)")
    p_serve.add_argument("--clients", type=int, default=8,
                         help="closed-loop client threads (default 8)")
    p_serve.add_argument("--queries", type=int, default=64,
                         help="total queries to replay (default 64)")
    p_serve.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate in queries/s "
                         "(default: closed loop)")
    p_serve.add_argument("--scan-workers", type=int, default=1,
                         help="morsel-scan threads per running query "
                         "(default 1: serial scans)")
    p_serve.add_argument("--scan-backend", choices=("thread", "process"),
                         default="thread",
                         help="where morsels run: in-process threads or a "
                         "persistent worker-process pool (default thread)")
    p_serve.add_argument("--result-cache", action="store_true",
                         help="cache finalized results by plan fingerprint "
                         "(invalidated on ingest epoch advance and SMA "
                         "quarantine)")
    p_serve.add_argument("--cache-entries", type=int, default=256,
                         help="result cache capacity in entries (default 256)")
    p_serve.add_argument("--shared-scans", action="store_true",
                         help="let queued queries over the same table attach "
                         "to one in-flight shared bucket pass")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-query timeout in seconds (default: none)")
    p_serve.add_argument("--report", action="store_true",
                         help="print the full metrics report")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="serve /metrics, /healthz and /snapshot on "
                         "this port while the workload runs (0 picks a "
                         "free port)")
    p_serve.add_argument("--trace-file",
                         help="write structured JSONL events (query "
                         "start/finish, span trees, slow queries) to this "
                         "file")
    p_serve.add_argument("--slow-ms", type=float, default=None,
                         help="log a slow_query event with captured EXPLAIN "
                         "for queries slower than this many milliseconds")
    p_serve.add_argument("--linger", type=float, default=0.0,
                         help="keep the metrics endpoint up this many "
                         "seconds after the workload finishes")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="treat --db as a sharded root (from `repro "
                         "shard-init`): launch this many local shard worker "
                         "processes and scatter-gather through the router")
    p_serve.add_argument("--shard-events",
                         help="with --shards: directory for per-shard JSONL "
                         "event logs (shard-<k>.jsonl)")
    add_faults(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_shard_init = sub.add_parser(
        "shard-init",
        help="partition a catalog into N shard catalogs + manifest",
    )
    add_db(p_shard_init)
    p_shard_init.add_argument("--out", required=True,
                              help="sharded root directory to create")
    p_shard_init.add_argument("--shards", type=int, required=True,
                              help="number of shards")
    p_shard_init.set_defaults(func=cmd_shard_init)

    p_shard_worker = sub.add_parser(
        "shard-worker",
        help="serve one shard catalog over a local socket (router backend)",
    )
    add_db(p_shard_worker)
    p_shard_worker.add_argument("--shard-id", type=int, required=True)
    p_shard_worker.add_argument("--host", default="127.0.0.1")
    p_shard_worker.add_argument("--port", type=int, default=0,
                                help="listen port (default 0: pick a free "
                                "port; the bound address is announced on "
                                "stdout)")
    p_shard_worker.add_argument("--workers", type=int, default=2,
                                help="query worker threads (default 2)")
    p_shard_worker.add_argument("--queue", type=int, default=32,
                                help="admission queue depth (default 32)")
    p_shard_worker.add_argument("--scan-workers", type=int, default=1,
                                help="morsel-scan threads per query "
                                "(default 1)")
    p_shard_worker.add_argument("--scan-backend",
                                choices=("thread", "process"),
                                default="thread",
                                help="where this shard's morsels run "
                                "(default thread)")
    p_shard_worker.add_argument("--events",
                                help="write this shard's JSONL events here")
    add_faults(p_shard_worker)
    p_shard_worker.set_defaults(func=cmd_shard_worker)

    p_verify = sub.add_parser(
        "verify", help="check heap page checksums and SMA contents "
        "against a fresh recompute"
    )
    add_db(p_verify)
    p_verify.add_argument("--repair", action="store_true",
                          help="rebuild damaged SMAs from the heap and "
                          "migrate unchecksummed heap files in place")
    p_verify.add_argument("--events",
                          help="write verify_issue/verify_repair events "
                          "as JSONL to this file")
    p_verify.set_defaults(func=cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
