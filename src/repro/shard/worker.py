"""Shard worker: one process owning one shard catalog.

A :class:`ShardWorker` wraps its shard's :class:`~repro.storage.catalog.Catalog`
(own buffer pool, own SMA sets) in a full
:class:`~repro.server.service.QueryService` — admission control,
per-query isolation, metrics — and serves the router's framed-JSON
requests over a local socket.  Aggregate queries run *partially*
(:meth:`~repro.query.session.Session.execute_partial`): the worker ships
the un-finalized aggregation state so the router can merge shard
partials order-preservingly.

Each shard plans independently: a predicate that grades well on one
shard's bucket range may pick ``sma_gaggr`` while a neighbour picks the
scan — the bucket-major contribution-order invariant makes the merged
result byte-identical either way.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ReproError, ShardProtocolError
from repro.lang.serde import query_from_json
from repro.obs.events import EventLog
from repro.obs.trace import Tracer
from repro.query.query import AggregateQuery, DmlStatement
from repro.server.service import QueryService
from repro.shard.protocol import recv_message, send_message
from repro.shard.state_serde import rows_to_wire, state_to_wire, stats_to_wire
from repro.storage.catalog import Catalog


def _error_reply(exc: BaseException) -> dict:
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


class ShardWorker:
    """Socket server + query service over one shard catalog."""

    def __init__(
        self,
        shard_id: int,
        catalog_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 32,
        scan_workers: int = 1,
        scan_backend: str = "thread",
        buffer_pages: int = 2048,
        default_timeout_s: float | None = None,
        fault_injector=None,
        events: EventLog | None = None,
        enable_tracing: bool = True,
    ):
        self.shard_id = shard_id
        self.catalog = Catalog.discover(
            catalog_dir,
            buffer_pages=buffer_pages,
            fault_injector=fault_injector,
        )
        self.events = events
        # Workers trace by default: requests carrying a wire trace
        # context get their local span tree exported in the reply so the
        # router reassembles one tree per query.  Span overhead is a few
        # allocations per query phase — noise against socket round trips.
        self.tracer = Tracer() if enable_tracing else None
        self.service = QueryService(
            self.catalog,
            workers=workers,
            queue_depth=queue_depth,
            scan_workers=scan_workers,
            scan_backend=scan_backend,
            default_timeout_s=default_timeout_s,
            tracer=self.tracer,
            events=events,
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread: threading.Thread | None = None
        self._closing = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardWorker":
        self.service.start()
        if self.events is not None:
            self.events.emit(
                "shard_worker_start",
                shard_id=self.shard_id,
                host=self.host,
                port=self.port,
            )
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"shard-{self.shard_id}-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        self.service.shutdown(wait=True, cancel_pending=True)
        self.catalog.close()
        if self.events is not None:
            self.events.emit("shard_worker_stop", shard_id=self.shard_id)

    def __enter__(self) -> "ShardWorker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def wait(self) -> None:
        """Block until :meth:`close` (the subprocess entry point's loop)."""
        self._closing.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"shard-{self.shard_id}-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._closing.is_set():
                try:
                    request = recv_message(conn)
                except (ShardProtocolError, OSError):
                    return
                if request is None:
                    return  # clean EOF
                if self._closing.is_set():
                    # A closing worker is *unavailable*, not a query
                    # error: drop the connection so the router's client
                    # sees a connection failure and marks the shard down.
                    return
                try:
                    reply = self._handle(request)
                except ReproError as exc:
                    reply = _error_reply(exc)
                except Exception as exc:  # noqa: BLE001 - never kill the conn loop
                    reply = _error_reply(exc)
                try:
                    send_message(conn, reply)
                except OSError:
                    return
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    self.close()
                    return

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    def _handle(self, request: object) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            raise ShardProtocolError(f"malformed request: {request!r}")
        op = request["op"]
        if op == "ping":
            return {
                "ok": True,
                "shard_id": self.shard_id,
                "tables": {
                    table.name: table.num_buckets
                    for table in self.catalog.tables()
                },
            }
        if op == "execute":
            return self._handle_execute(request)
        if op == "execute_dml":
            return self._handle_execute_dml(request)
        if op == "explain":
            return self._handle_explain(request)
        if op == "metrics":
            return {"ok": True, "metrics": self.service.observed_snapshot()}
        if op == "shutdown":
            return {"ok": True, "shard_id": self.shard_id}
        raise ShardProtocolError(f"unknown op {op!r}")

    def _handle_execute(self, request: dict) -> dict:
        query = query_from_json(request["query"])
        partial = isinstance(query, AggregateQuery)
        trace_ctx = request.get("trace")
        ticket = self.service.submit(
            query,
            mode=request.get("mode", "auto"),
            sma_set=request.get("sma_set"),
            timeout_s=request.get("timeout_s"),
            kind=request.get("kind") or None,
            partial=partial,
            trace_ctx=trace_ctx,
        )
        result = ticket.result()
        payload: dict = {
            "columns": list(result.columns),
            "stats": stats_to_wire(result.stats),
            "wall_seconds": result.wall_seconds,
            "strategy": result.plan.strategy,
            "warm": result.warm,
        }
        self._export_trace(ticket, trace_ctx, payload)
        if partial:
            payload["kind"] = "state"
            payload["state"] = state_to_wire(result.state)
        else:
            payload["kind"] = "rows"
            payload["rows"] = rows_to_wire(result.rows)
        return {"ok": True, "result": payload}

    @staticmethod
    def _export_trace(ticket, trace_ctx, payload: dict) -> None:
        """Ship the finished local span tree when the caller asked for it.

        ``ticket.result()`` has settled, so the job's root span (finished
        in the service worker's ``finally``) is complete.  Only traced
        requests pay the serialization; untraced routers get the slim
        reply they always did.
        """
        if trace_ctx is None:
            return
        trace = ticket.payload.trace
        if trace is not None:
            payload["trace"] = trace.to_dict()

    def _handle_execute_dml(self, request: dict) -> dict:
        """Apply one routed DML batch through this shard's write queue.

        The statement lands in the shard's own
        :func:`~repro.core.ingest.apply_dml` — intent-logged, SMA-
        maintained, epoch-bumped — exactly like a single-node write.
        """
        statement = query_from_json(request["query"])
        if not isinstance(statement, DmlStatement):
            raise ShardProtocolError(
                f"execute_dml frame carries {type(statement).__name__}, "
                f"not a DML statement"
            )
        trace_ctx = request.get("trace")
        ticket = self.service.submit(
            statement,
            timeout_s=request.get("timeout_s"),
            kind="dml",
            trace_ctx=trace_ctx,
        )
        result = ticket.result()
        rows_affected, epoch = result.rows[0]
        payload: dict = {
            "columns": list(result.columns),
            "rows_affected": int(rows_affected),
            "epoch": int(epoch),
            "strategy": result.plan.strategy,
            "wall_seconds": result.wall_seconds,
            "stats": stats_to_wire(result.stats),
        }
        self._export_trace(ticket, trace_ctx, payload)
        return {"ok": True, "result": payload}

    def _handle_explain(self, request: dict) -> dict:
        query = query_from_json(request["query"])
        explanation = self.service.explain(
            query,
            mode=request.get("mode", "auto"),
            sma_set=request.get("sma_set"),
        )
        return {
            "ok": True,
            "strategy": explanation.strategy,
            "rendered": explanation.render(),
        }


def run_worker_forever(worker: ShardWorker, *, announce=print) -> None:
    """Start *worker*, announce its bound address, and serve until closed.

    The announcement line is the launcher's contract:
    ``shard-worker <id> listening on <host>:<port>``.
    """
    worker.start()
    announce(
        f"shard-worker {worker.shard_id} listening on "
        f"{worker.host}:{worker.port}",
        flush=True,
    )
    try:
        worker.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        worker.close()


__all__ = ["ShardWorker", "run_worker_forever"]
