"""Length-prefixed JSON framing for the router <-> worker wire.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  JSON (not a binary format) keeps the wire
debuggable and dependency-free; framing makes message boundaries exact
so a reader never has to guess where one JSON document ends.

Float fidelity matters here: ``json.dumps`` emits ``repr(float)``
(shortest round-tripping form) and ``json.loads`` parses it back to the
bit-identical double, so per-shard aggregation partials survive the wire
without perturbing the byte-identical merge guarantee.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ShardProtocolError

#: Frame header: unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")

#: Request ops a shard worker understands.  ``execute`` scatters reads;
#: ``execute_dml`` carries one serialized DML statement to the shard(s)
#: that own the target rows — writes apply through each shard's own
#: intent-logged ingest path, never as merged partials.
KNOWN_OPS = frozenset(
    {"ping", "execute", "execute_dml", "explain", "metrics", "shutdown"}
)


def execute_dml_frame(query_json: dict, *, timeout_s: float | None = None) -> dict:
    """Build an ``execute_dml`` request frame for one shard worker."""
    return {"op": "execute_dml", "query": query_json, "timeout_s": timeout_s}

#: Hard cap on one frame's payload (64 MiB) — a corrupt header must not
#: make the reader try to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_message(sock: socket.socket, obj: object) -> None:
    """Encode *obj* as one framed JSON message and send it fully."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"refusing to send {len(payload)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly *size* bytes.

    Returns None on a clean EOF at a message boundary (the peer closed
    between frames); raises :class:`ShardProtocolError` on EOF
    mid-message (a truncated frame).
    """
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise ShardProtocolError(
                f"connection closed mid-frame ({size - remaining}/{size} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> object | None:
    """Receive one framed JSON message; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"frame header announces {length} bytes (cap {MAX_FRAME_BYTES})"
        )
    payload = _recv_exact(sock, length, at_boundary=False)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardProtocolError(f"undecodable frame payload: {exc}") from exc


__all__ = [
    "KNOWN_OPS",
    "MAX_FRAME_BYTES",
    "execute_dml_frame",
    "recv_message",
    "send_message",
]
