"""Sharded scatter-gather serving tier.

A single-node catalog is split at ``repro shard-init`` time into N shard
catalogs, each owning a contiguous bucket range of every table plus the
matching slices of every SMA-file (:mod:`repro.shard.partitioner`).
Shard workers (:mod:`repro.shard.worker`) are separate processes, each
with its own buffer pool and query service, speaking a length-prefixed
JSON protocol (:mod:`repro.shard.protocol`) over local sockets.  The
router (:mod:`repro.shard.router`) admits queries, scatters per-shard
subplans concurrently, gathers the un-finalized
:class:`~repro.query.aggregation.AggregationState` partials and merges
them in shard (= bucket range) order — which, by the engine's
contribution-order invariant, makes scatter-gathered results
byte-identical to single-node execution.
"""

from repro.shard.manifest import ShardManifest
from repro.shard.partitioner import shard_init
from repro.shard.router import ShardClient, ShardRouter, launch_local_shards
from repro.shard.worker import ShardWorker

__all__ = [
    "ShardClient",
    "ShardManifest",
    "ShardRouter",
    "ShardWorker",
    "launch_local_shards",
    "shard_init",
]
