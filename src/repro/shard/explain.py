"""EXPLAIN for sharded roots: routing + per-shard plan choice.

``repro explain --db <sharded-root>`` renders which shards a query
scatters to, which bucket range of the source table each one owns, and
the access path each shard's own planner picks for its slice — shards
plan independently, so a selective predicate can be ``sma_gaggr`` on one
shard and the heap scan on another.

Planning happens in-process (each shard catalog opens read-only for the
duration); no workers need to be running to EXPLAIN.
"""

from __future__ import annotations

from repro.query.query import AggregateQuery, ScanQuery
from repro.query.session import Session
from repro.shard.manifest import ShardManifest
from repro.storage.catalog import Catalog


def render_routing(
    root: str,
    query: AggregateQuery | ScanQuery,
    *,
    mode: str = "auto",
    sma_set: str | None = None,
    scan_workers: int = 1,
    buffer_pages: int = 2048,
) -> str:
    """Render the routing section plus per-shard strategies for *query*."""
    manifest = ShardManifest.load(root)
    table = query.table
    spans = [
        manifest.bucket_range(table, shard_id)
        for shard_id in range(manifest.num_shards)
    ]
    total_buckets = max((hi for _lo, hi in spans), default=0)
    lines = [
        f"Routing: scatter_gather across {manifest.num_shards} shards",
        f"  table={table} buckets={total_buckets} "
        f"partitioning=contiguous-bucket-ranges",
    ]
    for shard_id in range(manifest.num_shards):
        lo, hi = spans[shard_id]
        rel = manifest.shard_dirs[shard_id]
        if hi <= lo:
            lines.append(
                f"  shard {shard_id} ({rel}): buckets [{lo}, {hi}) -> empty"
            )
            continue
        with Catalog.discover(
            manifest.shard_path(root, shard_id), buffer_pages=buffer_pages
        ) as catalog:
            session = Session(catalog, scan_workers=scan_workers)
            explanation = session.explain(query, mode=mode, sma_set=sma_set)
        lines.append(
            f"  shard {shard_id} ({rel}): buckets [{lo}, {hi}) -> "
            f"{explanation.strategy}"
        )
    gather = (
        "merge partial aggregation states in shard order (order-preserving)"
        if isinstance(query, AggregateQuery)
        else "concatenate shard rows in shard order"
    )
    lines.append(f"Gather: {gather}")
    return "\n".join(lines)


__all__ = ["render_routing"]
