"""Split a single-node catalog into N shard catalogs.

The partitioner assigns each table's buckets to shards in contiguous
ranges — shard *k* owns buckets ``[k*B//N, (k+1)*B//N)`` — and copies
them bucket-for-bucket: every source bucket becomes exactly one shard
bucket (via :meth:`~repro.storage.heapfile.HeapFile.append_bucket`,
which never merges a partial bucket into its neighbour).  SMA-files are
not rebuilt but *sliced*: entry ``b`` of a source SMA is entry ``b-lo``
of shard ``k``'s SMA, so per-shard grading and SMA_GAggr advancement
read exactly the values the single-node plan would have read for those
buckets.

Contiguity is what buys byte-identical scatter-gather: each shard's
result partial covers one range of the source contribution order, and
merging partials in shard order reconstructs the single-node order.
"""

from __future__ import annotations

import os

from repro.core.sma_file import SmaFile
from repro.core.sma_set import SmaSet
from repro.errors import ShardError
from repro.shard.manifest import ShardManifest
from repro.storage.catalog import Catalog


def shard_ranges(num_buckets: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced half-open bucket ranges (may be empty)."""
    if num_shards < 1:
        raise ShardError(f"need at least one shard, got {num_shards}")
    return [
        (k * num_buckets // num_shards, (k + 1) * num_buckets // num_shards)
        for k in range(num_shards)
    ]


def _copy_bucket_range(source_table, shard_table, lo: int, hi: int) -> int:
    tuples = 0
    for bucket_no in range(lo, hi):
        records = source_table.read_bucket(bucket_no)
        shard_table.append_bucket(records)
        tuples += len(records)
    return tuples


def _slice_sma_set(
    source_set: SmaSet, shard_catalog: Catalog, shard_table, lo: int, hi: int
) -> None:
    directory = os.path.join(
        shard_catalog.sma_dir(shard_table.name), source_set.name
    )
    shard_set = SmaSet(source_set.name, shard_table, directory)
    pool = shard_catalog.pool
    for name, definition in source_set.definitions.items():
        files = {}
        for group_key, sma in source_set.files_of(name).items():
            values = sma.values(charge=False)[lo:hi]
            mask = sma.valid_mask()
            valid = None if mask is None else mask[lo:hi]
            files[group_key] = SmaFile.build(
                shard_set.file_path(name, group_key),
                values,
                pool,
                valid=valid,
                page_size=sma.page_size,
            )
        shard_set.add_materialized(definition, files)
    shard_set.save()
    shard_catalog.register_sma_set(shard_table.name, shard_set)


def shard_init(
    source_dir: str,
    out_dir: str,
    num_shards: int,
    *,
    buffer_pages: int = 2048,
) -> ShardManifest:
    """Partition the catalog at *source_dir* into *num_shards* catalogs.

    Creates ``out_dir/shard-0000 .. shard-NNNN`` (each a complete,
    independently openable catalog) plus the ``shards.json`` manifest.
    Refuses to overwrite an already initialised sharded root.
    """
    if ShardManifest.exists(out_dir):
        raise ShardError(
            f"{out_dir} already holds a shard manifest; refusing to re-init"
        )
    os.makedirs(out_dir, exist_ok=True)
    shard_dirs = tuple(f"shard-{k:04d}" for k in range(num_shards))

    with Catalog.discover(source_dir, buffer_pages=buffer_pages) as source:
        tables = list(source.tables())
        if not tables:
            raise ShardError(f"catalog at {source_dir} has no tables")
        ranges: dict[str, tuple[tuple[int, int], ...]] = {
            table.name: tuple(shard_ranges(table.num_buckets, num_shards))
            for table in tables
        }
        for k, rel in enumerate(shard_dirs):
            with Catalog(
                os.path.join(out_dir, rel), buffer_pages=buffer_pages
            ) as shard_catalog:
                for table in tables:
                    layout = table.heap.layout
                    shard_table = shard_catalog.create_table(
                        table.name,
                        table.schema,
                        page_size=layout.page_size,
                        pages_per_bucket=layout.pages_per_bucket,
                        page_header=layout.page_header,
                        clustered_on=table.clustered_on,
                    )
                    lo, hi = ranges[table.name][k]
                    _copy_bucket_range(table, shard_table, lo, hi)
                    for source_set in source.sma_sets(table.name):
                        _slice_sma_set(
                            source_set, shard_catalog, shard_table, lo, hi
                        )

    manifest = ShardManifest(
        num_shards=num_shards,
        shard_dirs=shard_dirs,
        tables=ranges,
        source=os.path.abspath(source_dir),
    )
    manifest.save(out_dir)
    return manifest


__all__ = ["shard_init", "shard_ranges"]
