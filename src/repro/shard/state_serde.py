"""Wire (de)serialization of partial results and I/O accounting.

The shard wire format rides on :mod:`repro.lang.serde`'s tagged-value
JSON, extended with two things the expression serde never needed:
``null`` values (absent MIN/MAX accumulators, NULL result cells) and
numpy scalars (per-batch ``values.sum()`` contributions are np.float64 /
np.int64).  Numpy scalars are converted through ``.item()``: for float64
that is the bit-identical Python float, and Python float ``+`` computes
bitwise the same sum as np.float64 ``+``, so the router's left-fold over
deserialized contributions reproduces single-node results exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShardProtocolError
from repro.lang.serde import (
    _value_from_json,
    _value_to_json,
    aggregate_spec_from_json,
    aggregate_spec_to_json,
    group_key_from_json,
    group_key_to_json,
)
from repro.query.aggregation import AggregationState
from repro.query.query import OutputAggregate
from repro.storage.stats import IoStats

#: Constructor-settable IoStats counters; ``as_dict()`` adds derived
#: totals (page_reads, page_accesses) that must not round-trip.
_IO_FIELDS = frozenset(field.name for field in dataclasses.fields(IoStats))


def value_to_wire(value: object) -> dict:
    """One tagged JSON value; handles None and numpy scalars."""
    if value is None:
        return {"t": "null"}
    if isinstance(value, np.generic):
        value = value.item()
    return _value_to_json(value)


def value_from_wire(node: dict) -> object:
    if node["t"] == "null":
        return None
    return _value_from_json(node)


# ----------------------------------------------------------------------
# AggregationState
# ----------------------------------------------------------------------


def state_to_wire(state: AggregationState) -> dict:
    """Serialize an un-finalized partial state for the gather wire."""
    groups = []
    for key, group in state.group_items():
        groups.append({
            "key": group_key_to_json(key),
            "count": group.count,
            "sums": [
                [value_to_wire(part) for part in contributions]
                for contributions in group.sums
            ],
            "mins": [value_to_wire(v) for v in group.mins],
            "maxs": [value_to_wire(v) for v in group.maxs],
        })
    return {
        "group_by": list(state.group_by),
        "aggregates": [
            {"name": a.name, "spec": aggregate_spec_to_json(a.spec)}
            for a in state.aggregates
        ],
        "is_date_result": state.is_date_result,
        "groups": groups,
    }


def state_from_wire(node: dict) -> AggregationState:
    """Rebuild a partial state; structurally equal to the worker's.

    The aggregates tuple is rebuilt from the same serde the query itself
    travelled through, so two shards' reconstructions compare equal and
    :meth:`~repro.query.aggregation.AggregationState.merge` accepts them.
    """
    try:
        aggregates = tuple(
            OutputAggregate(a["name"], aggregate_spec_from_json(a["spec"]))
            for a in node["aggregates"]
        )
        state = AggregationState(
            None,
            tuple(node["group_by"]),
            aggregates,
            is_date_result=[bool(flag) for flag in node["is_date_result"]],
        )
        for group in node["groups"]:
            state.load_group(
                group_key_from_json(group["key"]),
                group["count"],
                [
                    [value_from_wire(part) for part in contributions]
                    for contributions in group["sums"]
                ],
                [value_from_wire(v) for v in group["mins"]],
                [value_from_wire(v) for v in group["maxs"]],
            )
        return state
    except (KeyError, TypeError, IndexError) as exc:
        raise ShardProtocolError(f"malformed aggregation state: {exc}") from exc


# ----------------------------------------------------------------------
# IoStats and scan rows
# ----------------------------------------------------------------------


def stats_to_wire(stats: IoStats) -> dict:
    return stats.as_dict()


def stats_from_wire(node: dict) -> IoStats:
    kwargs = {key: value for key, value in node.items() if key in _IO_FIELDS}
    return IoStats(**kwargs)


def rows_to_wire(rows: list[tuple]) -> list[list[dict]]:
    return [[value_to_wire(v) for v in row] for row in rows]


def rows_from_wire(rows: list[list[dict]]) -> list[tuple]:
    return [tuple(value_from_wire(v) for v in row) for row in rows]


__all__ = [
    "rows_from_wire",
    "rows_to_wire",
    "state_from_wire",
    "state_to_wire",
    "stats_from_wire",
    "stats_to_wire",
    "value_from_wire",
    "value_to_wire",
]
