"""The shard manifest: how one catalog was split across N shards.

``repro shard-init`` writes ``shards.json`` at the sharded root; the
router, the EXPLAIN routing section and ``repro serve --shards`` all
read it back.  Presence of the file is what marks a directory as a
sharded root rather than a plain catalog.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import ShardError

MANIFEST_FILE = "shards.json"


@dataclass(frozen=True)
class ShardManifest:
    """Partitioning record for one sharded root directory.

    ``tables`` maps each table name to its per-shard contiguous bucket
    ranges as ``(lo, hi)`` half-open intervals over the *source* table's
    bucket numbering; concatenated in shard order they cover
    ``[0, num_buckets)`` exactly.  Ranges may be empty when there are
    more shards than buckets.
    """

    num_shards: int
    shard_dirs: tuple[str, ...]  # relative to the sharded root
    tables: dict[str, tuple[tuple[int, int], ...]] = field(default_factory=dict)
    source: str = ""

    def shard_path(self, root: str, shard_id: int) -> str:
        return os.path.join(root, self.shard_dirs[shard_id])

    def bucket_range(self, table: str, shard_id: int) -> tuple[int, int]:
        try:
            return self.tables[table][shard_id]
        except KeyError:
            raise ShardError(
                f"table {table!r} not in shard manifest; have "
                f"{sorted(self.tables)}"
            ) from None

    def save(self, root: str) -> str:
        path = os.path.join(root, MANIFEST_FILE)
        payload = {
            "num_shards": self.num_shards,
            "shard_dirs": list(self.shard_dirs),
            "tables": {
                name: [list(span) for span in spans]
                for name, spans in self.tables.items()
            },
            "source": self.source,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        return path

    @classmethod
    def load(cls, root: str) -> "ShardManifest":
        path = os.path.join(root, MANIFEST_FILE)
        if not os.path.exists(path):
            raise ShardError(
                f"{root} is not a sharded root (no {MANIFEST_FILE}); "
                f"run `repro shard-init` first"
            )
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            num_shards=int(payload["num_shards"]),
            shard_dirs=tuple(payload["shard_dirs"]),
            tables={
                name: tuple((int(lo), int(hi)) for lo, hi in spans)
                for name, spans in payload["tables"].items()
            },
            source=payload.get("source", ""),
        )

    @staticmethod
    def exists(root: str) -> bool:
        return os.path.exists(os.path.join(root, MANIFEST_FILE))


__all__ = ["MANIFEST_FILE", "ShardManifest"]
