"""Scatter-gather router over a fleet of shard workers.

:class:`ShardRouter` fronts N shard workers with the exact service shape
:class:`~repro.server.service.QueryService` exposes — ``submit`` with
admission control, tickets, a metrics registry — so workload drivers and
the serve CLI run unchanged against it.  Each admitted query is
scattered to every shard concurrently; the gathered per-shard partials
merge **in shard order**, which (shards own contiguous bucket ranges in
that same order) reconstructs the single-node contribution order exactly
and finalizes to byte-identical results.

Failure policy: a scatter-gathered relation is all-or-nothing.  If any
shard cannot answer — even after
:class:`~repro.storage.faults.RetryPolicy` connection retries — the
whole query fails with a typed error instead of silently returning the
surviving shards' partial relation.
"""

from __future__ import annotations

import os
import re
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import repro.errors as errors_module
from repro.errors import (
    PlanningError,
    ReproError,
    ServerOverloadedError,
    ShardError,
    ShardProtocolError,
    ShardUnavailableError,
)
from repro.lang.serde import query_to_json
from repro.obs.collect import build_ledger, graft_remote_trace
from repro.query.cache import HIT, ResultCache, plan_fingerprint, query_tables
from repro.obs.events import EventLog
from repro.obs.trace import Span, resolve_tracer
from repro.query.planner import PlanInfo
from repro.query.query import (
    AggregateQuery,
    DeleteStatement,
    DmlStatement,
    InsertStatement,
    ScanQuery,
    UpdateStatement,
)
from repro.query.session import QueryResult, _sort_rows
from repro.server.executor import QueryExecutor, QueryTicket, TicketState
from repro.server.metrics import LatencyRecorder, MetricsRegistry
from repro.shard.manifest import ShardManifest
from repro.shard.protocol import execute_dml_frame, recv_message, send_message
from repro.shard.state_serde import rows_from_wire, state_from_wire, stats_from_wire
from repro.storage.disk import PAPER_DISK, DiskModel
from repro.storage.faults import RetryPolicy
from repro.storage.stats import IoStats


def _map_remote_error(info: dict, shard_id: int) -> ReproError:
    """Rebuild a worker-side error as the matching typed exception."""
    type_name = info.get("type", "ShardError")
    message = f"shard {shard_id}: {info.get('message', 'unknown error')}"
    cls = getattr(errors_module, type_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:  # pragma: no cover - odd constructor signature
            pass
    return ShardError(message)


@dataclass(frozen=True)
class ShardEndpoint:
    shard_id: int
    host: str
    port: int


class ShardClient:
    """Pooled framed-JSON client for one shard worker.

    Connections are pooled per client; each in-flight request checks one
    out (so concurrent subqueries to the same shard use separate
    sockets).  Connection-level failures — refused connects, resets,
    torn frames — retry under the shard *retry policy*: served queries
    are read-only, so a replay is always safe.  Application-level errors
    from the worker are typed and raise immediately, no retry.
    """

    def __init__(
        self,
        endpoint: ShardEndpoint,
        *,
        retry_policy: RetryPolicy | None = None,
        connect_timeout_s: float = 5.0,
    ):
        self.endpoint = endpoint
        self.retry_policy = retry_policy or RetryPolicy()
        self.connect_timeout_s = connect_timeout_s
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def shard_id(self) -> int:
        return self.endpoint.shard_id

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.endpoint.host, self.endpoint.port),
            timeout=self.connect_timeout_s,
        )
        sock.settimeout(None)  # request latency is bounded worker-side
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ShardError(
                    f"client for shard {self.shard_id} is closed"
                )
            if self._idle:
                return self._idle.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(sock)
                return
        sock.close()

    def request(self, payload: dict) -> dict:
        """One request/reply round trip with bounded connection retries.

        The reply dict gains an ``attempts`` key (how many tries this
        round trip took) so traced scatters can annotate retries — only
        the final successful reply's stats and spans reach the gather,
        which is what keeps retried I/O from double-counting.
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            sock: socket.socket | None = None
            try:
                sock = self._checkout()
                send_message(sock, payload)
                reply = recv_message(sock)
                if reply is None:
                    raise ShardProtocolError(
                        f"shard {self.shard_id} closed the connection "
                        f"before replying"
                    )
            except (OSError, ShardProtocolError) as exc:
                if sock is not None:
                    sock.close()
                if attempt >= policy.max_attempts:
                    raise ShardUnavailableError(
                        f"shard {self.shard_id} unreachable after "
                        f"{attempt} attempts: {exc}",
                        shard_id=self.shard_id,
                    ) from exc
                time.sleep(policy.backoff_s(attempt))
                attempt += 1
                continue
            self._checkin(sock)
            if not isinstance(reply, dict):
                raise ShardProtocolError(
                    f"shard {self.shard_id} sent a non-object reply"
                )
            if not reply.get("ok", False):
                raise _map_remote_error(
                    reply.get("error", {}), self.shard_id
                )
            reply["attempts"] = attempt
            return reply

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()


class ShardScoreboard:
    """Per-shard liveness/latency plus router fan-out counters."""

    def __init__(self, num_shards: int):
        self._lock = threading.Lock()
        self._up = [True] * num_shards
        self._requests = [0] * num_shards
        self._failures = [0] * num_shards
        self._latency = [LatencyRecorder() for _ in range(num_shards)]
        self.scatter_queries = 0
        self.subqueries_sent = 0
        self.gather_merges = 0

    def record_scatter(self, fan_out: int) -> None:
        with self._lock:
            self.scatter_queries += 1
            self.subqueries_sent += fan_out

    def record_shard_success(self, shard_id: int, latency_s: float) -> None:
        with self._lock:
            self._requests[shard_id] += 1
            self._latency[shard_id].record(latency_s)
            self._up[shard_id] = True

    def record_shard_failure(self, shard_id: int, *, unavailable: bool) -> None:
        with self._lock:
            self._requests[shard_id] += 1
            self._failures[shard_id] += 1
            if unavailable:
                self._up[shard_id] = False

    def record_merge(self) -> None:
        with self._lock:
            self.gather_merges += 1

    def mark_up(self, shard_id: int, up: bool) -> None:
        with self._lock:
            self._up[shard_id] = up

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "fanout": {
                    "scatter_queries": self.scatter_queries,
                    "subqueries_sent": self.subqueries_sent,
                    "gather_merges": self.gather_merges,
                },
                "shards": {
                    str(i): {
                        "up": self._up[i],
                        "requests": self._requests[i],
                        "failures": self._failures[i],
                        "latency_s": self._latency[i].as_dict(),
                    }
                    for i in range(len(self._up))
                },
            }


@dataclass(frozen=True)
class _RouterJob:
    query: AggregateQuery | ScanQuery | DmlStatement
    mode: str = "auto"
    sma_set: str | None = None
    kind: str = "query"
    #: per-query root span (created at submit, finished by the router
    #: worker after the gather) — None when tracing is disabled
    trace: Span | None = None


class ShardRouter:
    """Admission-controlled scatter-gather execution over shard workers.

    Duck-typed to :class:`~repro.server.service.QueryService`:
    ``submit``/``execute`` with the same signatures, ``.metrics``,
    ``observed_snapshot()`` — so
    :class:`~repro.server.workload.WorkloadDriver` and the metrics
    endpoint work unchanged on a sharded deployment.
    """

    def __init__(
        self,
        endpoints: list[ShardEndpoint],
        *,
        manifest: ShardManifest | None = None,
        workers: int = 4,
        queue_depth: int = 32,
        default_timeout_s: float | None = None,
        disk_model: DiskModel = PAPER_DISK,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        retry_policy: RetryPolicy | None = None,
        tracer=None,
        result_cache: bool = False,
        cache_entries: int = 256,
    ):
        if not endpoints:
            raise ShardError("a router needs at least one shard endpoint")
        self.manifest = manifest
        self.disk_model = disk_model
        self.default_timeout_s = default_timeout_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        # With a tracer, every routed query gets a root span, each
        # scatter leg a ``shard_execute`` child carrying its wire trace
        # context, and the workers' exported span trees are grafted back
        # so one tree covers the whole distributed execution.
        self.tracer = resolve_tracer(tracer)
        if events is not None and self.tracer.enabled:
            self.tracer.add_sink(
                lambda root: events.emit("trace", trace=root.to_dict())
            )
        self.clients = [
            ShardClient(endpoint, retry_policy=retry_policy)
            for endpoint in sorted(endpoints, key=lambda e: e.shard_id)
        ]
        self.scoreboard = ShardScoreboard(len(self.clients))
        # Router-side plan-fingerprint cache: keyed on the merged-epoch
        # clock (advanced on every DML the router itself gathers), so a
        # write through this router moves every affected plan to a fresh
        # key and stale entries age out of the LRU.  Writes bypassing
        # the router are invisible to this clock — same single-writer
        # assumption the shard manifest already makes.
        self.result_cache = ResultCache(cache_entries) if result_cache else None
        self._epoch_lock = threading.Lock()
        self._table_epochs: dict[str, int] = {}
        self._executor = QueryExecutor(
            self._run_job,
            workers=workers,
            queue_depth=queue_depth,
            skipped_fn=self._record_skipped,
            name="repro-router",
        )
        # Sized so every router worker can scatter to every shard at
        # once — a full fan-out never waits on another query's fan-out.
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(1, workers * len(self.clients)),
            thread_name_prefix="repro-scatter",
        )

    @property
    def num_shards(self) -> int:
        return len(self.clients)

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def queue_depth(self) -> int:
        return self._executor.queue_depth

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardRouter":
        self._executor.start()
        if self.events is not None:
            self.events.emit(
                "router_start",
                shards=self.num_shards,
                workers=self.workers,
                queue_depth=self.queue_depth,
            )
        return self

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        self._executor.shutdown(wait=wait, cancel_pending=cancel_pending)
        self._scatter_pool.shutdown(wait=False)
        for client in self.clients:
            client.close()
        if self.events is not None:
            self.events.emit(
                "router_stop", queries=self.metrics.snapshot()["queries"]
            )

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True, cancel_pending=True)

    # ------------------------------------------------------------------
    # health & observability
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Ping every shard; marks the scoreboard and returns the map."""
        out: dict = {}
        for client in self.clients:
            try:
                reply = client.ping()
                self.scoreboard.mark_up(client.shard_id, True)
                out[client.shard_id] = {
                    "up": True,
                    "tables": reply.get("tables", {}),
                }
            except ReproError as exc:
                self.scoreboard.mark_up(client.shard_id, False)
                out[client.shard_id] = {"up": False, "error": str(exc)}
        return out

    def observed_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["shard"] = self.scoreboard.snapshot()
        if self.result_cache is not None:
            snapshot["result_cache"] = self.result_cache.snapshot()
        if self.events is not None:
            snapshot["events"] = self.events.stats()
        return snapshot

    def shard_metrics(self) -> dict[int, dict]:
        """Each live shard's own service snapshot (best-effort)."""
        out: dict[int, dict] = {}
        for client in self.clients:
            try:
                out[client.shard_id] = client.request({"op": "metrics"})[
                    "metrics"
                ]
            except ReproError:
                continue
        return out

    # ------------------------------------------------------------------
    # submission (QueryService-shaped)
    # ------------------------------------------------------------------

    def submit(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        timeout_s: float | None = None,
        kind: str | None = None,
    ) -> QueryTicket:
        if isinstance(query, str):
            from repro.query.query import ExplainQuery
            from repro.sql.parser import parse_statement

            statement = parse_statement(query)
            if isinstance(statement, ExplainQuery):
                raise PlanningError(
                    "EXPLAIN is served by `repro explain`, not the router"
                )
            if not isinstance(
                statement,
                (
                    AggregateQuery,
                    ScanQuery,
                    InsertStatement,
                    UpdateStatement,
                    DeleteStatement,
                ),
            ):
                raise PlanningError(
                    "the shard router serves SELECT and DML statements only"
                )
            query = statement
        if kind is None:
            if isinstance(query, DmlStatement):
                kind = "dml"
            elif isinstance(query, AggregateQuery):
                kind = "aggregate"
            else:
                kind = "scan"
        trace = None
        if self.tracer.enabled:
            # Root span opens at submit so its duration covers the queue
            # wait; the router worker finishes it after the gather.
            trace = self.tracer.begin("query", root=True)
            trace.annotate(
                kind=kind, mode=mode, query=str(query), shards=self.num_shards
            )
        job = _RouterJob(
            query=query, mode=mode, sma_set=sma_set, kind=kind, trace=trace
        )
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        try:
            ticket = self._executor.submit(job, timeout_s=timeout)
        except ServerOverloadedError:
            self.metrics.record_rejected()
            if trace is not None:
                trace.annotate(outcome="rejected")
                self.tracer.finish(trace)
            if self.events is not None:
                self.events.emit(
                    "query_rejected", kind=kind, query=str(query)
                )
            raise
        self.metrics.record_submitted()
        if trace is not None:
            trace.annotate(ticket=ticket.id)
        if self.events is not None:
            self.events.emit(
                "query_start",
                ticket=ticket.id,
                kind=kind,
                query=str(query),
                trace_id=trace.trace_id if trace is not None else None,
            )
        return ticket

    def execute(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        timeout_s: float | None = None,
        kind: str | None = None,
    ) -> QueryResult:
        return self.submit(
            query, mode=mode, sma_set=sma_set, timeout_s=timeout_s, kind=kind
        ).result()

    # ------------------------------------------------------------------
    # scatter / gather
    # ------------------------------------------------------------------

    def _subquery(
        self,
        client: ShardClient,
        request: dict,
        trace: Span | None = None,
    ) -> tuple[dict, float]:
        span = None
        if trace is not None:
            # One ``shard_execute`` span per scatter leg, parented
            # explicitly (this runs on a scatter-pool thread with no
            # active span).  Its wire context rides in the request so
            # the worker's own root becomes this span's child.
            span = self.tracer.begin("shard_execute", parent=trace)
            span.annotate(shard=client.shard_id)
            request = dict(request)
            request["trace"] = {
                "trace_id": trace.trace_id,
                "parent_span_id": span.span_id,
            }
        started = time.perf_counter()
        try:
            reply = client.request(request)
        except ReproError as exc:
            self.scoreboard.record_shard_failure(
                client.shard_id,
                unavailable=isinstance(exc, ShardUnavailableError),
            )
            if span is not None:
                # A failed leg contributes no I/O: the span records the
                # error but carries no io delta, so reconciliation of a
                # later successful run stays exact.
                span.annotate(error=type(exc).__name__)
                self.tracer.finish(span)
            if self.events is not None:
                self.events.emit(
                    "shard_error",
                    shard_id=client.shard_id,
                    error=type(exc).__name__,
                    message=str(exc),
                    trace_id=trace.trace_id if trace is not None else None,
                )
            raise
        elapsed = time.perf_counter() - started
        self.scoreboard.record_shard_success(client.shard_id, elapsed)
        if span is not None:
            span.annotate(attempts=reply.get("attempts", 1))
            self.tracer.finish(span)
            remote = reply["result"].get("trace")
            if remote is not None:
                # Finish first so the graft rebases the worker tree into
                # the span's closed [start, end] window (clock skew is
                # tolerated, never trusted).
                graft_remote_trace(self.tracer, span, remote)
        return reply, elapsed

    def _run_job(self, ticket: QueryTicket) -> QueryResult:
        job: _RouterJob = ticket.payload
        wait = ticket.queue_wait_s
        if wait is not None:
            self.metrics.record_queue_wait(wait)
        trace = job.trace
        if trace is not None and wait is not None:
            self.tracer.record_span("queue_wait", parent=trace, duration_s=wait)
        if isinstance(job.query, DmlStatement):
            return self._run_dml_job(ticket, job)
        started = time.perf_counter()
        cache = self.result_cache
        cache_outcome = "bypass"
        key: str | None = None
        epochs: dict[str, int] | None = None
        tables: frozenset[str] = frozenset()
        result: QueryResult | None = None
        if cache is not None:
            tables = query_tables(job.query)
            epochs = self._cache_epochs(tables)
            key = plan_fingerprint(
                job.query,
                epochs=epochs,
                mode=job.mode,
                sma_set=job.sma_set,
                scan={"shards": self.num_shards},
            )
            wait_s = None
            if ticket.deadline is not None:
                wait_s = max(0.001, ticket.deadline - time.monotonic())
            outcome, cached = cache.acquire(key, timeout_s=wait_s)
            if outcome == HIT and cached is not None:
                cache_outcome = "hit"
                result = self._serve_cached(
                    cached, time.perf_counter() - started
                )
                if self.events is not None:
                    self.events.emit(
                        "cache_hit",
                        ticket=ticket.id,
                        table=result.plan.table,
                        key=key[:16],
                    )
        done = False
        try:
            if result is None:
                try:
                    result = self._scatter_read(job, ticket, started, trace)
                except BaseException:
                    if key is not None:
                        cache.abandon(key)
                    raise
                if key is not None:
                    cache_outcome = "miss"
                    # A DML may have been gathered while this read was in
                    # flight; an entry is only stored when the epoch clock
                    # is unchanged, so a cached result always matches the
                    # epochs in its key.
                    if self._cache_epochs(tables) == epochs:
                        cache.complete(key, result, tables)
                        if self.events is not None:
                            self.events.emit(
                                "cache_store",
                                ticket=ticket.id,
                                table=result.plan.table,
                                key=key[:16],
                            )
                    else:
                        cache.abandon(key)
            done = True
        except ReproError:
            self.metrics.record_failure(job.kind)
            raise
        finally:
            if trace is not None:
                trace.annotate(
                    outcome="completed" if done else "failed",
                    cache=cache_outcome,
                )
                self.tracer.finish(trace)
        self.metrics.record_success(
            job.kind,
            result.wall_seconds,
            result.stats,
            strategy=result.plan.strategy,
        )
        if self.events is not None:
            self.events.emit(
                "query_finish",
                ticket=ticket.id,
                kind=job.kind,
                outcome="completed",
                latency_s=result.wall_seconds,
                simulated_s=result.simulated_seconds,
                strategy=result.plan.strategy,
                io=result.stats.as_dict(),
                trace_id=trace.trace_id if trace is not None else None,
            )
        self._observe_ledger(trace, cache=cache_outcome)
        return result

    def _scatter_read(
        self,
        job: _RouterJob,
        ticket: QueryTicket,
        started: float,
        trace: Span | None,
    ) -> QueryResult:
        """Scatter one read to every shard and gather the merged result."""
        remaining = None
        if ticket.deadline is not None:
            remaining = max(0.001, ticket.deadline - time.monotonic())
        request = {
            "op": "execute",
            "query": query_to_json(job.query),
            "mode": job.mode,
            "sma_set": job.sma_set,
            "kind": job.kind,
            "timeout_s": remaining,
        }
        self.scoreboard.record_scatter(self.num_shards)
        futures = [
            self._scatter_pool.submit(self._subquery, client, request, trace)
            for client in self.clients
        ]
        replies: list[dict] = []
        first_error: BaseException | None = None
        for future in futures:  # gather in shard order
            try:
                reply, _elapsed = future.result()
                replies.append(reply["result"])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            # Partial-result refusal: one failed shard fails the query.
            raise first_error
        return self._gather(job, replies, started)

    # ------------------------------------------------------------------
    # router-side result cache
    # ------------------------------------------------------------------

    def _cache_epochs(self, tables: frozenset[str]) -> dict[str, int]:
        """Snapshot of the router's per-table merged-epoch clock."""
        with self._epoch_lock:
            return {table: self._table_epochs.get(table, 0) for table in tables}

    def _bump_epoch(self, table: str, epoch: int) -> None:
        """Advance the clock past every cached fingerprint of *table*.

        The clock takes the gathered max shard epoch but always strictly
        increases, so even a zero-row DML moves reads of the table onto a
        fresh cache key.
        """
        with self._epoch_lock:
            current = self._table_epochs.get(table, 0)
            self._table_epochs[table] = max(current + 1, int(epoch))
        if self.result_cache is not None:
            self.result_cache.invalidate_table(table)

    def _serve_cached(self, cached: QueryResult, wall: float) -> QueryResult:
        """A hit is a copy: fresh stats (a hit does no I/O), real wall."""
        import dataclasses

        empty = IoStats()
        return dataclasses.replace(
            cached,
            stats=empty,
            wall_seconds=wall,
            cost=self.disk_model.cost(empty),
            plan=PlanInfo(
                strategy="result_cache",
                reason="router plan-fingerprint cache hit at merged epoch",
                table=cached.plan.table,
            ),
        )

    def _observe_ledger(self, trace: Span | None, cache: str | None = None) -> None:
        """Distill one finished merged trace into the resource ledger."""
        if trace is None:
            return
        ledger = build_ledger(trace)
        if cache is not None:
            ledger["cache"] = cache
        self.metrics.record_ledger(ledger)
        if self.events is not None:
            self.events.emit("query_ledger", **ledger)

    def _route_dml(self, statement: DmlStatement) -> list[ShardClient]:
        """Pick the shard(s) one DML batch applies to.

        Inserts route to the **last** shard: shards own contiguous bucket
        ranges in shard order, so the table's tail buckets — the only
        place appends land — live there, and the scatter-gather read
        order stays the single-node bucket order.  Updates and deletes
        scatter to every shard; each rewrites only the rows it owns and
        the per-shard ``rows_affected`` counts sum exactly.
        """
        if isinstance(statement, InsertStatement):
            return [self.clients[-1]]
        return list(self.clients)

    def _run_dml_job(self, ticket: QueryTicket, job: _RouterJob) -> QueryResult:
        trace = job.trace
        remaining = None
        if ticket.deadline is not None:
            remaining = max(0.001, ticket.deadline - time.monotonic())
        request = execute_dml_frame(
            query_to_json(job.query), timeout_s=remaining
        )
        targets = self._route_dml(job.query)
        started = time.perf_counter()
        self.scoreboard.record_scatter(len(targets))
        futures = [
            self._scatter_pool.submit(self._subquery, client, request, trace)
            for client in targets
        ]
        replies: list[dict] = []
        first_error: BaseException | None = None
        for future in futures:  # gather in shard order
            try:
                reply, _elapsed = future.result()
                replies.append(reply["result"])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        done = False
        try:
            if first_error is not None:
                # A write that reached some shards but not others is a
                # reported failure, never a silent partial application.
                raise first_error
            result = self._gather_dml(job, targets, replies, started)
            done = True
        except ReproError:
            self.metrics.record_failure(job.kind)
            raise
        finally:
            if trace is not None:
                trace.annotate(outcome="completed" if done else "failed")
                self.tracer.finish(trace)
        self.metrics.record_success(
            job.kind,
            result.wall_seconds,
            result.stats,
            strategy=result.plan.strategy,
        )
        self.metrics.record_ingest(
            job.query.table,
            result.plan.strategy,
            int(result.rows[0][0]),
            int(result.rows[0][1]),
        )
        self._bump_epoch(job.query.table, int(result.rows[0][1]))
        if self.events is not None:
            self.events.emit(
                "ingest_applied",
                ticket=ticket.id,
                table=job.query.table,
                op=result.plan.strategy,
                rows_affected=int(result.rows[0][0]),
                epoch=int(result.rows[0][1]),
                shards=len(targets),
                latency_s=result.wall_seconds,
                trace_id=trace.trace_id if trace is not None else None,
            )
        self._observe_ledger(trace)
        return result

    def _gather_dml(
        self,
        job: _RouterJob,
        targets: list[ShardClient],
        replies: list[dict],
        started: float,
    ) -> QueryResult:
        """Sum per-shard ``rows_affected``; report the max shard epoch."""
        affected = sum(int(reply["rows_affected"]) for reply in replies)
        epoch = max(int(reply["epoch"]) for reply in replies)
        stats = stats_from_wire(replies[0]["stats"])
        for reply in replies[1:]:
            stats.merge(stats_from_wire(reply["stats"]))
        wall = time.perf_counter() - started
        op = replies[0]["strategy"]
        info = PlanInfo(
            strategy=op,
            reason=(
                f"routed to {len(targets)} of {self.num_shards} shard(s); "
                f"write path intent-logged per shard"
            ),
            table=job.query.table,
        )
        return QueryResult(
            columns=["rows_affected", "epoch"],
            rows=[(affected, epoch)],
            stats=stats,
            wall_seconds=wall,
            cost=self.disk_model.cost(stats),
            plan=info,
            warm=True,
            epoch=epoch,
        )

    def _gather(
        self, job: _RouterJob, replies: list[dict], started: float
    ) -> QueryResult:
        """Merge per-shard partials (already in shard order) into one result."""
        query = job.query
        stats = stats_from_wire(replies[0]["stats"])
        for reply in replies[1:]:
            stats.merge(stats_from_wire(reply["stats"]))
        per_shard = [reply["strategy"] for reply in replies]
        columns = list(replies[0]["columns"])
        if isinstance(query, AggregateQuery):
            merged = state_from_wire(replies[0]["state"])
            for reply in replies[1:]:
                merged.merge(state_from_wire(reply["state"]))
            self.scoreboard.record_merge()
            columns, rows = merged.finalize()
            rows = _sort_rows(rows, columns, query.order_by, query.order_desc)
        else:
            rows = []
            for reply in replies:
                rows.extend(rows_from_wire(reply["rows"]))
        wall = time.perf_counter() - started
        info = PlanInfo(
            strategy=f"scatter_gather[{'|'.join(per_shard)}]",
            reason=(
                f"scattered to {self.num_shards} shards; merged partials "
                f"in shard (bucket-range) order"
            ),
            table=query.table,
        )
        return QueryResult(
            columns=columns,
            rows=rows,
            stats=stats,
            wall_seconds=wall,
            cost=self.disk_model.cost(stats),
            plan=info,
            warm=all(reply.get("warm", True) for reply in replies),
        )

    def _record_skipped(self, ticket: QueryTicket) -> None:
        job: _RouterJob = ticket.payload
        if ticket.state is TicketState.TIMED_OUT:
            outcome = "timed_out"
            self.metrics.record_timeout(job.kind)
        else:
            outcome = "cancelled"
            self.metrics.record_cancelled(job.kind)
        if job.trace is not None:
            job.trace.annotate(outcome=outcome, skipped=True)
            self.tracer.finish(job.trace)


# ----------------------------------------------------------------------
# local subprocess fleet
# ----------------------------------------------------------------------

_LISTEN_RE = re.compile(
    r"shard-worker (\d+) listening on ([\w.\-]+):(\d+)"
)


@dataclass
class ShardProcess:
    """Handle on one launched worker subprocess."""

    shard_id: int
    process: subprocess.Popen
    endpoint: ShardEndpoint
    _drain: threading.Thread | None = field(default=None, repr=False)

    def stop(self, timeout_s: float = 10.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.process.kill()
                self.process.wait()


def _await_listen_line(
    process: subprocess.Popen, shard_id: int, timeout_s: float
) -> ShardEndpoint:
    deadline = time.monotonic() + timeout_s
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise ShardError(
                f"shard worker {shard_id} exited before listening "
                f"(rc={process.poll()})"
            )
        match = _LISTEN_RE.search(line)
        if match:
            return ShardEndpoint(
                shard_id=int(match.group(1)),
                host=match.group(2),
                port=int(match.group(3)),
            )
    raise ShardError(
        f"shard worker {shard_id} did not report its port within {timeout_s}s"
    )


def _drain_output(process: subprocess.Popen) -> threading.Thread:
    """Keep consuming the child's output so its pipe never fills up."""

    def drain() -> None:
        assert process.stdout is not None
        for _line in process.stdout:
            pass

    thread = threading.Thread(target=drain, daemon=True)
    thread.start()
    return thread


def launch_local_shards(
    root: str,
    *,
    manifest: ShardManifest | None = None,
    workers: int = 2,
    scan_workers: int = 1,
    scan_backend: str = "thread",
    queue_depth: int = 32,
    buffer_pages: int = 2048,
    events_dir: str | None = None,
    faults: str | None = None,
    fault_seed: int = 0,
    startup_timeout_s: float = 30.0,
) -> list[ShardProcess]:
    """Spawn one worker subprocess per shard of the sharded root.

    Each worker binds an ephemeral port and announces it on stdout; this
    returns once every worker is reachable.  Callers own the processes —
    ``stop()`` each (or use :func:`stop_local_shards`).
    """
    manifest = manifest or ShardManifest.load(root)
    import repro as _repro_pkg

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro_pkg.__file__)))
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    processes: list[ShardProcess] = []
    try:
        for shard_id in range(manifest.num_shards):
            argv = [
                sys.executable,
                "-m",
                "repro",
                "shard-worker",
                "--db", manifest.shard_path(root, shard_id),
                "--shard-id", str(shard_id),
                "--port", "0",
                "--workers", str(workers),
                "--scan-workers", str(scan_workers),
                "--scan-backend", scan_backend,
                "--queue", str(queue_depth),
                "--buffer-pages", str(buffer_pages),
            ]
            if events_dir is not None:
                os.makedirs(events_dir, exist_ok=True)
                argv += [
                    "--events",
                    os.path.join(events_dir, f"shard-{shard_id}.jsonl"),
                ]
            if faults is not None:
                argv += ["--faults", faults, "--fault-seed", str(fault_seed)]
            process = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            endpoint = _await_listen_line(process, shard_id, startup_timeout_s)
            drain = _drain_output(process)
            processes.append(
                ShardProcess(
                    shard_id=shard_id,
                    process=process,
                    endpoint=endpoint,
                    _drain=drain,
                )
            )
    except BaseException:
        stop_local_shards(processes)
        raise
    return processes


def stop_local_shards(processes: list[ShardProcess]) -> None:
    for handle in processes:
        handle.stop()


__all__ = [
    "ShardClient",
    "ShardEndpoint",
    "ShardProcess",
    "ShardRouter",
    "ShardScoreboard",
    "launch_local_shards",
    "stop_local_shards",
]
