"""Concurrent query service over one shared catalog.

The serving layer of the reproduction: a thread-safe buffer pool (in
:mod:`repro.storage.buffer`) under an admission-controlled worker pool,
with per-query I/O isolation, cooperative timeout/cancellation and a
metrics registry.  See README.md § "Concurrent query service".

Quickstart::

    from repro import Catalog
    from repro.server import QueryService, WorkloadDriver, default_mix

    catalog = Catalog.discover("./db")
    with QueryService(catalog, workers=4, queue_depth=32) as service:
        driver = WorkloadDriver(service, default_mix())
        result = driver.run_closed_loop(clients=8, queries_per_client=8)
        print(result.throughput_qps)
"""

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServerError,
    ServerOverloadedError,
    ServerShutdownError,
)
from repro.server.executor import (
    QueryExecutor,
    QueryTicket,
    TicketState,
)
from repro.server.metrics import (
    DEFAULT_AMBIVALENT_BREAK_EVEN,
    FixedHistogram,
    GradingGauges,
    LatencyRecorder,
    MetricsRegistry,
)
from repro.server.report import render_metrics, render_workload
from repro.server.service import QueryJob, QueryService
from repro.server.workload import (
    WorkloadDriver,
    WorkloadOutcome,
    WorkloadQuery,
    WorkloadResult,
    default_mix,
    expand_mix,
)

__all__ = [
    "DEFAULT_AMBIVALENT_BREAK_EVEN",
    "FixedHistogram",
    "GradingGauges",
    "LatencyRecorder",
    "MetricsRegistry",
    "QueryCancelledError",
    "QueryExecutor",
    "QueryJob",
    "QueryService",
    "QueryTicket",
    "QueryTimeoutError",
    "ServerError",
    "ServerOverloadedError",
    "ServerShutdownError",
    "TicketState",
    "WorkloadDriver",
    "WorkloadOutcome",
    "WorkloadQuery",
    "WorkloadResult",
    "default_mix",
    "expand_mix",
    "render_metrics",
    "render_workload",
]
