"""Admission-controlled worker-pool executor.

The :class:`QueryExecutor` owns the threads and the bounded admission
queue of the query service, and nothing else — *what* a ticket does is
the ``run_fn`` callable injected by :class:`~repro.server.service.QueryService`,
which keeps the lifecycle machinery independently testable.

Admission is strictly non-blocking: :meth:`QueryExecutor.submit` either
enqueues the ticket or raises
:class:`~repro.errors.ServerOverloadedError` immediately.  An overloaded
service therefore sheds load instead of building an unbounded backlog or
deadlocking callers.

Each :class:`QueryTicket` is a small future: callers ``wait``/``result``
on it, may ``cancel`` it, and can inspect queue-wait and run times.
Cancellation of a *queued* ticket is immediate (the worker skips it);
cancellation of a *running* ticket is cooperative — the buffer pool
checks the ticket's cancel event on every page access.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from typing import Any, Callable

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServerError,
    ServerOverloadedError,
    ServerShutdownError,
)


class TicketState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


#: States in which a ticket has settled and ``result()`` will not block.
SETTLED_STATES = frozenset(
    {TicketState.DONE, TicketState.FAILED, TicketState.CANCELLED, TicketState.TIMED_OUT}
)


class QueryTicket:
    """A submitted query's handle: state, timing, result/error, cancel."""

    def __init__(self, ticket_id: int, payload: Any, *, deadline: float | None = None):
        self.id = ticket_id
        self.payload = payload
        #: absolute ``time.monotonic()`` deadline, or None for no timeout
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._lock = threading.Lock()
        self._state = TicketState.QUEUED
        self._settled = threading.Event()
        self.cancel_event = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None

    # -- inspection ----------------------------------------------------

    @property
    def state(self) -> TicketState:
        return self._state

    def done(self) -> bool:
        return self._settled.is_set()

    @property
    def queue_wait_s(self) -> float | None:
        """Seconds spent in the admission queue (None while still queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    # -- waiting -------------------------------------------------------

    def wait(self, timeout: float | None = None) -> bool:
        return self._settled.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """Block for the outcome; re-raise the query's error if it has one."""
        if not self.wait(timeout):
            raise ServerError(
                f"ticket {self.id} not settled within {timeout}s wait"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def error(self) -> BaseException | None:
        """The settled error, if any (None while running or on success)."""
        return self._error

    # -- transitions ---------------------------------------------------

    def cancel(self) -> bool:
        """Request cancellation.  Returns False if already settled.

        A queued ticket is skipped by the worker; a running ticket
        observes the event at its next page access.
        """
        with self._lock:
            if self._settled.is_set():
                return False
            self.cancel_event.set()
            return True

    def _mark_running(self) -> bool:
        """Worker-side claim.  Settles and returns False when the ticket
        was cancelled or its deadline passed while still queued."""
        now = time.monotonic()
        with self._lock:
            if self._settled.is_set():
                return False
            if self.cancel_event.is_set():
                self._settle(
                    TicketState.CANCELLED,
                    error=QueryCancelledError(
                        f"ticket {self.id} cancelled while queued"
                    ),
                    at=now,
                )
                return False
            if self.deadline is not None and now > self.deadline:
                self._settle(
                    TicketState.TIMED_OUT,
                    error=QueryTimeoutError(
                        f"ticket {self.id} deadline passed after "
                        f"{now - self.submitted_at:.3f}s in queue"
                    ),
                    at=now,
                )
                return False
            self._state = TicketState.RUNNING
            self.started_at = now
            return True

    def _finish(
        self,
        state: TicketState,
        *,
        result: Any = None,
        error: BaseException | None = None,
    ) -> None:
        with self._lock:
            if self._settled.is_set():  # pragma: no cover - double settle guard
                return
            self._settle(state, result=result, error=error, at=time.monotonic())

    def _settle(
        self,
        state: TicketState,
        *,
        result: Any = None,
        error: BaseException | None = None,
        at: float,
    ) -> None:
        assert state in SETTLED_STATES
        self._state = state
        self._result = result
        self._error = error
        self.finished_at = at
        self._settled.set()


_STOP = object()


class QueryExecutor:
    """Fixed worker pool draining a bounded admission queue of tickets.

    Parameters
    ----------
    run_fn:
        Called as ``run_fn(ticket)`` on a worker thread; its return value
        settles the ticket as DONE.  :class:`~repro.errors.QueryTimeoutError`
        / :class:`~repro.errors.QueryCancelledError` settle it as
        TIMED_OUT / CANCELLED, any other exception as FAILED.
    skipped_fn:
        Optional observer invoked for tickets that settled *without*
        running (cancelled or expired while queued) — the service uses it
        to keep its metrics complete.
    workers:
        Number of worker threads.
    queue_depth:
        Admission queue bound; ``submit`` beyond ``workers + queue_depth``
        in-flight tickets raises :class:`~repro.errors.ServerOverloadedError`.
    """

    def __init__(
        self,
        run_fn: Callable[[QueryTicket], Any],
        *,
        workers: int = 4,
        queue_depth: int = 32,
        skipped_fn: Callable[[QueryTicket], None] | None = None,
        name: str = "repro-server",
    ):
        if workers <= 0:
            raise ServerError(f"workers must be positive, got {workers}")
        if queue_depth <= 0:
            raise ServerError(f"queue_depth must be positive, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self._run_fn = run_fn
        self._skipped_fn = skipped_fn
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._shutdown = False
        self._name = name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "QueryExecutor":
        with self._state_lock:
            if self._shutdown:
                raise ServerShutdownError("executor already shut down")
            if self._started:
                return self
            self._started = True
            for i in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self._name}-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work, then stop workers after the queue drains.

        ``cancel_pending=True`` additionally cancels every ticket still
        queued, so shutdown does not wait for a backlog to execute.
        """
        with self._state_lock:
            first_call = not self._shutdown
            self._shutdown = True
            started = self._started
        if first_call:
            if cancel_pending:
                # Workers will observe the cancel flag in _mark_running and
                # settle the tickets without running them.
                with self._queue.mutex:
                    pending = [
                        item for item in self._queue.queue
                        if isinstance(item, QueryTicket)
                    ]
                for item in pending:
                    item.cancel()
            if started:
                for _ in self._threads:
                    # sentinels pass the queue bound via blocking put()
                    self._queue.put(_STOP)
        if wait and started:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "QueryExecutor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True, cancel_pending=True)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def submit(self, payload: Any, *, timeout_s: float | None = None) -> QueryTicket:
        """Admit *payload* or raise; never blocks on a full queue."""
        with self._state_lock:
            if self._shutdown:
                raise ServerShutdownError("executor is shut down")
            if not self._started:
                raise ServerError("executor not started; call start() first")
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        ticket = QueryTicket(next(self._ids), payload, deadline=deadline)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            raise ServerOverloadedError(
                f"admission queue full ({self.queue_depth} queued); "
                f"query rejected"
            ) from None
        return ticket

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._run_ticket(item)
            finally:
                self._queue.task_done()

    def _run_ticket(self, ticket: QueryTicket) -> None:
        if not ticket._mark_running():
            if self._skipped_fn is not None:
                self._skipped_fn(ticket)
            return
        try:
            result = self._run_fn(ticket)
        except QueryTimeoutError as exc:
            ticket._finish(TicketState.TIMED_OUT, error=exc)
        except QueryCancelledError as exc:
            ticket._finish(TicketState.CANCELLED, error=exc)
        except BaseException as exc:  # noqa: BLE001 - settle, never kill worker
            ticket._finish(TicketState.FAILED, error=exc)
        else:
            ticket._finish(TicketState.DONE, result=result)
