"""The concurrent query service: many queries, one shared catalog.

:class:`QueryService` is the serving façade the ROADMAP's north star
asks for: it runs queries from many clients at once against a single
:class:`~repro.storage.catalog.Catalog` (one shared buffer pool, one set
of SMA indexes), with

* **admission control** — a bounded queue in front of a fixed worker
  pool; beyond the bound, ``submit`` raises
  :class:`~repro.errors.ServerOverloadedError` instead of queueing
  unboundedly (see :mod:`repro.server.executor`);
* **per-query isolation** — every execution runs inside
  :meth:`BufferPool.query_context`, so its
  :class:`~repro.storage.stats.IoStats` delta and sequential-read
  classification are exact even while other queries interleave page
  accesses on the same pool;
* **timeouts and cancellation** — cooperative, enforced at every page
  access through the query context's deadline/cancel event;
* **metrics** — every outcome lands in a
  :class:`~repro.server.metrics.MetricsRegistry` (latency percentiles,
  queue wait, buffer hit rate, buckets skipped vs fetched).

Each worker thread owns a private :class:`~repro.query.session.Session`
(planners are cheap and stateless; sessions are not shared across
threads), while the catalog, pool and SMA sets are shared read-only.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import (
    PlanningError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerOverloadedError,
)
from repro.query.planner import Explanation
from repro.query.query import AggregateQuery, ExplainQuery, ScanQuery
from repro.query.session import QueryResult, Session
from repro.server.executor import QueryExecutor, QueryTicket, TicketState
from repro.server.metrics import MetricsRegistry
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel, PAPER_DISK
from repro.storage.stats import IoStats


@dataclass(frozen=True)
class QueryJob:
    """What one ticket carries: the query and its execution knobs."""

    query: AggregateQuery | ScanQuery | str
    mode: str = "auto"
    sma_set: str | None = None
    #: metrics bucket ("q1", "range_scan", ...); defaults by query class
    kind: str = "query"


class QueryService:
    """Admission-controlled concurrent execution over one shared catalog.

    Parameters
    ----------
    catalog:
        The shared database instance.  Served queries must be read-only;
        loading/maintenance stays a single-threaded, out-of-band concern.
    workers:
        Worker thread count (concurrent query executions).
    queue_depth:
        Admission queue bound — tickets waiting beyond the running ones.
    default_timeout_s:
        Applied to submissions that don't pass their own ``timeout_s``.
        ``None`` disables timeouts by default.
    scan_workers:
        Morsel-scan threads *per running query* (intra-query
        parallelism); 1 keeps executions serial.  Total scan threads can
        reach ``workers * scan_workers``.
    morsel_buckets:
        Buckets per morsel when ``scan_workers`` > 1.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        workers: int = 4,
        queue_depth: int = 32,
        default_timeout_s: float | None = None,
        disk_model: DiskModel = PAPER_DISK,
        metrics: MetricsRegistry | None = None,
        scan_workers: int = 1,
        morsel_buckets: int | None = None,
    ):
        self.catalog = catalog
        self.disk_model = disk_model
        self.default_timeout_s = default_timeout_s
        self.scan_workers = scan_workers
        self.morsel_buckets = morsel_buckets
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sessions = threading.local()
        self._executor = QueryExecutor(
            self._run_job,
            workers=workers,
            queue_depth=queue_depth,
            skipped_fn=self._record_skipped,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def queue_depth(self) -> int:
        return self._executor.queue_depth

    def start(self) -> "QueryService":
        self._executor.start()
        return self

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        self._executor.shutdown(wait=wait, cancel_pending=cancel_pending)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True, cancel_pending=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        timeout_s: float | None = None,
        kind: str | None = None,
    ) -> QueryTicket:
        """Admit one query; returns its ticket or raises
        :class:`~repro.errors.ServerOverloadedError` when the queue is full.

        *query* is a logical query object or a SQL SELECT string.
        """
        if kind is None:
            kind = (
                "aggregate"
                if isinstance(query, AggregateQuery)
                else "scan" if isinstance(query, ScanQuery) else "sql"
            )
        job = QueryJob(query=query, mode=mode, sma_set=sma_set, kind=kind)
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        try:
            ticket = self._executor.submit(job, timeout_s=timeout)
        except ServerOverloadedError:
            self.metrics.record_rejected()
            raise
        self.metrics.record_submitted()
        return ticket

    def execute(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        timeout_s: float | None = None,
        kind: str | None = None,
    ) -> QueryResult:
        """Synchronous convenience: submit and wait for the result."""
        ticket = self.submit(
            query, mode=mode, sma_set=sma_set, timeout_s=timeout_s, kind=kind
        )
        return ticket.result()

    def explain(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
    ) -> Explanation:
        """Plan *query* without executing it (runs on the caller's thread,
        bypassing admission — planning only grades SMA-files).

        SQL strings may, but need not, carry the ``EXPLAIN`` prefix.
        """
        if isinstance(query, str):
            from repro.sql.parser import parse_statement

            statement = parse_statement(query)
            if isinstance(statement, ExplainQuery):
                statement = statement.query
            if not isinstance(statement, (AggregateQuery, ScanQuery)):
                raise PlanningError(
                    "QueryService.explain takes a SELECT statement"
                )
            query = statement
        return self._session().explain(query, mode=mode, sma_set=sma_set)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _session(self) -> Session:
        session = getattr(self._sessions, "session", None)
        if session is None:
            kwargs: dict = {"scan_workers": self.scan_workers}
            if self.morsel_buckets is not None:
                kwargs["morsel_buckets"] = self.morsel_buckets
            session = Session(self.catalog, self.disk_model, **kwargs)
            self._sessions.session = session
        return session

    def _run_job(self, ticket: QueryTicket) -> QueryResult:
        job: QueryJob = ticket.payload
        wait = ticket.queue_wait_s
        if wait is not None:
            self.metrics.record_queue_wait(wait)
        session = self._session()
        window = IoStats()
        pool = self.catalog.pool
        try:
            with pool.query_context(
                window,
                cancel_event=ticket.cancel_event,
                deadline=ticket.deadline,
            ):
                if isinstance(job.query, str):
                    result = session.sql(
                        job.query, mode=job.mode, sma_set=job.sma_set
                    )
                else:
                    result = session.execute(
                        job.query, mode=job.mode, sma_set=job.sma_set
                    )
        except QueryTimeoutError:
            self.metrics.record_timeout(job.kind)
            raise
        except QueryCancelledError:
            self.metrics.record_cancelled(job.kind)
            raise
        except BaseException:
            self.metrics.record_failure(job.kind)
            raise
        self.metrics.record_success(
            job.kind,
            result.wall_seconds,
            result.stats,
            strategy=result.plan.strategy,
        )
        return result

    def _record_skipped(self, ticket: QueryTicket) -> None:
        """Metrics for tickets settled without running (queued-cancel/expire)."""
        job: QueryJob = ticket.payload
        if ticket.state is TicketState.TIMED_OUT:
            self.metrics.record_timeout(job.kind)
        else:
            self.metrics.record_cancelled(job.kind)
