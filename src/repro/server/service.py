"""The concurrent query service: many queries, one shared catalog.

:class:`QueryService` is the serving façade the ROADMAP's north star
asks for: it runs queries from many clients at once against a single
:class:`~repro.storage.catalog.Catalog` (one shared buffer pool, one set
of SMA indexes), with

* **admission control** — a bounded queue in front of a fixed worker
  pool; beyond the bound, ``submit`` raises
  :class:`~repro.errors.ServerOverloadedError` instead of queueing
  unboundedly (see :mod:`repro.server.executor`);
* **per-query isolation** — every execution runs inside
  :meth:`BufferPool.query_context`, so its
  :class:`~repro.storage.stats.IoStats` delta and sequential-read
  classification are exact even while other queries interleave page
  accesses on the same pool;
* **timeouts and cancellation** — cooperative, enforced at every page
  access through the query context's deadline/cancel event;
* **metrics** — every outcome lands in a
  :class:`~repro.server.metrics.MetricsRegistry` (latency percentiles,
  queue wait, buffer hit rate, buckets skipped vs fetched).

Each worker thread owns a private :class:`~repro.query.session.Session`
(planners are cheap and stateless; sessions are not shared across
threads), while the catalog, pool and SMA sets are shared read-only.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass

from repro.errors import (
    PlanningError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerOverloadedError,
)
from repro.obs.collect import build_ledger
from repro.obs.events import EventLog
from repro.obs.trace import Span, resolve_tracer
from repro.query.cache import HIT, ResultCache, plan_fingerprint, query_tables
from repro.query.planner import Explanation, PlanInfo
from repro.query.query import (
    AggregateQuery,
    DeleteStatement,
    DmlStatement,
    ExplainQuery,
    InsertStatement,
    ScanQuery,
    UpdateStatement,
)
from repro.query.session import QueryResult, Session
from repro.server.executor import QueryExecutor, QueryTicket, TicketState
from repro.server.metrics import MetricsRegistry
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel, PAPER_DISK
from repro.storage.stats import IoStats


# Stateless, so one shared instance is safe across threads.
_NO_CM = nullcontext()


@dataclass(frozen=True)
class QueryJob:
    """What one ticket carries: the query and its execution knobs."""

    query: AggregateQuery | ScanQuery | DmlStatement | str
    mode: str = "auto"
    sma_set: str | None = None
    #: metrics bucket ("q1", "range_scan", ...); defaults by query class
    kind: str = "query"
    #: per-query root span (created at submit, finished by the worker) —
    #: None when tracing is disabled
    trace: Span | None = None
    #: remote trace context ({"trace_id", "parent_span_id"}) when this
    #: job arrived over the shard wire — events carry the *global*
    #: (router-side) trace id so they join against the merged tree
    trace_ctx: dict | None = None
    #: stop aggregate queries before finalize and return the raw
    #: :class:`~repro.query.session.PartialQueryResult` (shard workers)
    partial: bool = False
    #: write-path job: tracked on the write-queue depth gauge and, on
    #: success, on the ingest counters/events
    is_dml: bool = False


_DML_PREFIXES = ("INSERT", "UPDATE", "DELETE")


def _looks_like_dml(query: AggregateQuery | ScanQuery | DmlStatement | str) -> bool:
    """Whether a submission targets the write path (objects or SQL text)."""
    if isinstance(query, (InsertStatement, UpdateStatement, DeleteStatement)):
        return True
    if isinstance(query, str):
        return query.lstrip().upper().startswith(_DML_PREFIXES)
    return False


class QueryService:
    """Admission-controlled concurrent execution over one shared catalog.

    Parameters
    ----------
    catalog:
        The shared database instance.  Reads and DML share the service:
        writes serialize per table behind the catalog's ingest lock
        (tracked on the write-queue depth gauge) while readers proceed
        against epoch-pinned bucket-generation snapshots.  Bulk loading
        stays a single-threaded, out-of-band concern.
    workers:
        Worker thread count (concurrent query executions).
    queue_depth:
        Admission queue bound — tickets waiting beyond the running ones.
    default_timeout_s:
        Applied to submissions that don't pass their own ``timeout_s``.
        ``None`` disables timeouts by default.
    scan_workers:
        Morsel-scan threads *per running query* (intra-query
        parallelism); 1 keeps executions serial.  Total scan threads can
        reach ``workers * scan_workers``.
    morsel_buckets:
        Buckets per morsel when ``scan_workers`` > 1.
    scan_backend:
        Where morsels run: ``"thread"`` (in-process pool, default) or
        ``"process"`` (persistent worker-process pool that sidesteps
        the GIL; see :mod:`repro.query.procpool`).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When given, every
        submission gets a per-query root span (created at submit time so
        it covers the queue wait) that the worker thread adopts; finished
        span trees go to the tracer's sinks and, when *events* is also
        set, into the event log as ``trace`` records.
    events:
        Optional :class:`~repro.obs.events.EventLog` receiving structured
        query start/finish, slow-query, warning and lifecycle events.
        Emission never blocks the query path.
    slow_query_s:
        Wall-clock threshold above which a completed query additionally
        emits a ``slow_query`` event carrying its captured EXPLAIN.
        None disables slow-query capture.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        workers: int = 4,
        queue_depth: int = 32,
        default_timeout_s: float | None = None,
        disk_model: DiskModel = PAPER_DISK,
        metrics: MetricsRegistry | None = None,
        scan_workers: int = 1,
        morsel_buckets: int | None = None,
        scan_backend: str = "thread",
        tracer=None,
        events: EventLog | None = None,
        slow_query_s: float | None = None,
        result_cache: bool = False,
        cache_entries: int = 256,
        shared_scans: bool = False,
    ):
        self.catalog = catalog
        self.disk_model = disk_model
        self.default_timeout_s = default_timeout_s
        self.scan_workers = scan_workers
        self.morsel_buckets = morsel_buckets
        self.scan_backend = scan_backend
        #: plan-fingerprint result cache (None = disabled).  Keys carry
        #: the per-table ingest epoch, so epoch advance is the natural
        #: invalidation; quarantine and go_cold() evict eagerly.
        self.result_cache = ResultCache(cache_entries) if result_cache else None
        #: cooperative shared-scan dispatcher (None = disabled).
        self.shared_scans = None
        if shared_scans:
            from repro.query.sharedscan import SharedScanDispatcher

            self.shared_scans = SharedScanDispatcher()
        #: the scan-parameter slice of every cache key this service mints
        self._scan_signature = {
            "workers": int(scan_workers),
            "morsel_buckets": morsel_buckets,
            "backend": scan_backend,
        }
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.set_scan_info(
            backend=scan_backend, scan_workers=scan_workers
        )
        self.tracer = resolve_tracer(tracer)
        self.events = events
        self.slow_query_s = slow_query_s
        if events is not None and self.tracer.enabled:
            self.tracer.add_sink(
                lambda root: events.emit("trace", trace=root.to_dict())
            )
        self._sessions = threading.local()
        self._executor = QueryExecutor(
            self._run_job,
            workers=workers,
            queue_depth=queue_depth,
            skipped_fn=self._record_skipped,
        )
        # Surface planner quarantines as metrics + events.  The catalog
        # outlives this service, so shutdown() must unsubscribe — stale
        # listeners would push events into closed logs.
        catalog.integrity.add_listener(self._on_integrity_event)
        # go_cold() must drop the result cache together with the buffer
        # pool and decode caches; unregistered again at shutdown.
        self._cold_hook = None
        if self.result_cache is not None:
            self._cold_hook = self.result_cache.clear
            catalog.add_cold_hook(self._cold_hook)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def queue_depth(self) -> int:
        return self._executor.queue_depth

    def start(self) -> "QueryService":
        self._executor.start()
        if self.events is not None:
            self.events.emit(
                "server_start",
                workers=self.workers,
                queue_depth=self.queue_depth,
                scan_workers=self.scan_workers,
                scan_backend=self.scan_backend,
                started_at=self.metrics.started_at,
            )
        return self

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        self.catalog.integrity.remove_listener(self._on_integrity_event)
        if self._cold_hook is not None:
            self.catalog.remove_cold_hook(self._cold_hook)
        self._executor.shutdown(wait=wait, cancel_pending=cancel_pending)
        if self.events is not None:
            self.events.emit(
                "server_stop", queries=self.metrics.snapshot()["queries"]
            )

    def _on_integrity_event(self, event: str, info: dict) -> None:
        """Integrity-monitor listener: count + publish quarantines/repairs."""
        if event == "sma_quarantined":
            self.metrics.record_quarantine(
                info.get("table", ""), info.get("sma_set", "")
            )
            # A quarantined SMA definition means the table's metadata is
            # suspect: evict its cached results and poison every pending
            # shared pass — detached consumers re-plan solo, where the
            # quarantine fallback routes them to the heap.
            table = info.get("table", "")
            if table:
                if self.result_cache is not None:
                    evicted = self.result_cache.invalidate_table(table)
                    if evicted and self.events is not None:
                        self.events.emit(
                            "cache_invalidate",
                            table=table,
                            entries=evicted,
                            reason="sma_quarantined",
                        )
                if self.shared_scans is not None:
                    poisoned = self.shared_scans.poison(
                        table, "sma_quarantined"
                    )
                    if poisoned and self.events is not None:
                        self.events.emit(
                            "shared_scan_poison",
                            table=table,
                            groups=poisoned,
                            reason="sma_quarantined",
                        )
        elif event == "sma_repaired":
            self.metrics.record_repair(
                info.get("table", ""), info.get("sma_set", "")
            )
        elif event == "intent_replayed":
            self.metrics.record_intent_resolution(
                info.get("action", "replayed")
            )
        if self.events is not None:
            self.events.emit(event, **info)

    def observed_snapshot(self) -> dict:
        """The metrics snapshot plus the event log's own stats.

        This is what the ``/metrics`` and ``/snapshot`` endpoints serve,
        so drop counters of the observability pipeline are themselves
        observable.
        """
        snapshot = self.metrics.snapshot()
        scan = snapshot.get("scan")
        if scan is not None and self.scan_backend == "process":
            from repro.query import procpool

            scan["pool"] = procpool.pool_gauges(self.catalog.root_dir)
        if self.result_cache is not None:
            snapshot["result_cache"] = self.result_cache.snapshot()
        if self.shared_scans is not None:
            snapshot["shared_scan"] = self.shared_scans.snapshot()
        if self.events is not None:
            snapshot["events"] = self.events.stats()
        return snapshot

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True, cancel_pending=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        timeout_s: float | None = None,
        kind: str | None = None,
        partial: bool = False,
        trace_ctx: dict | None = None,
    ) -> QueryTicket:
        """Admit one query; returns its ticket or raises
        :class:`~repro.errors.ServerOverloadedError` when the queue is full.

        *query* is a logical query object, a DML statement, or a SQL
        string.  ``partial=True`` runs aggregate queries only up to
        their un-finalized aggregation state (the shard-worker execution
        path); scan queries execute normally.  ``trace_ctx`` is the
        remote trace context a shard worker received over the wire
        (``{"trace_id", "parent_span_id"}``): the local root span is
        annotated with it so the router's collector can verify the
        graft, and this service's events carry the global trace id.
        """
        is_dml = _looks_like_dml(query)
        if kind is None:
            if is_dml:
                kind = "dml"
            else:
                kind = (
                    "aggregate"
                    if isinstance(query, AggregateQuery)
                    else "scan" if isinstance(query, ScanQuery) else "sql"
                )
        trace = None
        if self.tracer.enabled:
            # Root span opens at submit so its duration covers the queue
            # wait; the worker thread adopts and finishes it.
            trace = self.tracer.begin("query", root=True)
            trace.annotate(kind=kind, mode=mode, query=str(query))
            if trace_ctx is not None:
                trace.annotate(
                    remote_trace_id=trace_ctx.get("trace_id"),
                    remote_parent_span_id=trace_ctx.get("parent_span_id"),
                )
        job = QueryJob(
            query=query,
            mode=mode,
            sma_set=sma_set,
            kind=kind,
            trace=trace,
            trace_ctx=trace_ctx,
            partial=partial,
            is_dml=is_dml,
        )
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        try:
            ticket = self._executor.submit(job, timeout_s=timeout)
        except ServerOverloadedError:
            self.metrics.record_rejected()
            if self.events is not None:
                self.events.emit("query_rejected", kind=kind, query=str(query))
            raise
        self.metrics.record_submitted()
        if is_dml:
            self.metrics.write_queue_enter()
        if trace is not None:
            trace.annotate(ticket=ticket.id)
        if self.events is not None:
            self.events.emit(
                "query_start",
                ticket=ticket.id,
                kind=kind,
                query=str(query),
                trace_id=self._trace_id(job),
            )
        return ticket

    def execute(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
        timeout_s: float | None = None,
        kind: str | None = None,
    ) -> QueryResult:
        """Synchronous convenience: submit and wait for the result."""
        ticket = self.submit(
            query, mode=mode, sma_set=sma_set, timeout_s=timeout_s, kind=kind
        )
        return ticket.result()

    def explain(
        self,
        query: AggregateQuery | ScanQuery | str,
        *,
        mode: str = "auto",
        sma_set: str | None = None,
    ) -> Explanation:
        """Plan *query* without executing it (runs on the caller's thread,
        bypassing admission — planning only grades SMA-files).

        SQL strings may, but need not, carry the ``EXPLAIN`` prefix.
        """
        if isinstance(query, str):
            from repro.sql.parser import parse_statement

            statement = parse_statement(query)
            if isinstance(statement, ExplainQuery):
                statement = statement.query
            if not isinstance(statement, (AggregateQuery, ScanQuery)):
                raise PlanningError(
                    "QueryService.explain takes a SELECT statement"
                )
            query = statement
        return self._explain_session().explain(
            query, mode=mode, sma_set=sma_set
        )

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    @staticmethod
    def _trace_id(job: QueryJob) -> int | None:
        """The trace id this job's events should join against.

        A wire context wins (events must join the *router's* merged
        tree, not the worker-local root); otherwise the local root span;
        None when tracing is off.
        """
        if job.trace_ctx is not None:
            return job.trace_ctx.get("trace_id")
        if job.trace is not None:
            return job.trace.trace_id
        return None

    def _session(self) -> Session:
        session = getattr(self._sessions, "session", None)
        if session is None:
            kwargs: dict = {
                "scan_workers": self.scan_workers,
                "scan_backend": self.scan_backend,
            }
            if self.morsel_buckets is not None:
                kwargs["morsel_buckets"] = self.morsel_buckets
            session = Session(
                self.catalog, self.disk_model, tracer=self.tracer, **kwargs
            )
            self._sessions.session = session
        return session

    def _explain_session(self) -> Session:
        """Untraced session for planning-only inspection.

        ``explain`` (including the slow-query capture) must not trace:
        with no enclosing query root, every planner span would become its
        own root and flood the trace sinks.
        """
        session = getattr(self._sessions, "explain_session", None)
        if session is None:
            session = Session(
                self.catalog, self.disk_model,
                scan_workers=self.scan_workers,
                scan_backend=self.scan_backend,
            )
            self._sessions.explain_session = session
        return session

    def _run_job(self, ticket: QueryTicket) -> QueryResult:
        job: QueryJob = ticket.payload
        wait = ticket.queue_wait_s
        if wait is not None:
            self.metrics.record_queue_wait(wait)
        trace = job.trace
        if trace is not None and wait is not None:
            self.tracer.record_span(
                "queue_wait", parent=trace, duration_s=wait
            )
        session = self._session()
        window = IoStats()
        pool = self.catalog.pool
        outcome = "completed"
        cache_note = {"cache": "bypass"}
        try:
            # Adopt the submit-side root span on this worker thread, so
            # everything the session opens parents under it.
            with self.tracer.activate(trace) if trace is not None else _NO_CM:
                # DML runs without the cancel/deadline hooks: a write
                # batch aborted mid-apply would leave a pending intent
                # for repair; writes finish, then the ticket settles.
                with pool.query_context(
                    window,
                    cancel_event=None if job.is_dml else ticket.cancel_event,
                    deadline=None if job.is_dml else ticket.deadline,
                ):
                    query = job.query
                    if job.partial and isinstance(query, str):
                        from repro.sql.parser import parse_statement

                        query = parse_statement(query)
                    elif (
                        isinstance(query, str)
                        and not job.is_dml
                        and (
                            self.result_cache is not None
                            or self.shared_scans is not None
                        )
                    ):
                        # SQL reads parse up-front so the cache and the
                        # shared-scan dispatcher see the logical plan
                        # (this is also what makes fingerprints
                        # whitespace-insensitive).  EXPLAIN and anything
                        # else stays a string and takes the session.sql
                        # path below, uncached.
                        from repro.sql.parser import parse_statement

                        parsed = parse_statement(query)
                        if isinstance(parsed, (AggregateQuery, ScanQuery)):
                            query = parsed
                    if job.partial and isinstance(query, AggregateQuery):
                        result = session.execute_partial(
                            query, mode=job.mode, sma_set=job.sma_set
                        )
                    elif isinstance(query, str):
                        result = session.sql(
                            query, mode=job.mode, sma_set=job.sma_set
                        )
                    elif not job.is_dml and isinstance(
                        query, (AggregateQuery, ScanQuery)
                    ):
                        result = self._execute_read(
                            session, ticket, job, query, cache_note
                        )
                    else:
                        result = session.execute(
                            query, mode=job.mode, sma_set=job.sma_set
                        )
        except QueryTimeoutError:
            outcome = "timed_out"
            self.metrics.record_timeout(job.kind)
            raise
        except QueryCancelledError:
            outcome = "cancelled"
            self.metrics.record_cancelled(job.kind)
            raise
        except BaseException:
            outcome = "failed"
            self.metrics.record_failure(job.kind)
            raise
        finally:
            if job.is_dml:
                self.metrics.write_queue_exit()
            if trace is not None:
                trace.annotate(outcome=outcome)
                self.tracer.finish(trace)
        self.metrics.record_success(
            job.kind,
            result.wall_seconds,
            result.stats,
            strategy=result.plan.strategy,
        )
        if result.plan.strategy in ("insert", "update", "delete"):
            self._observe_ingest(ticket, job, result)
        self._observe_success(ticket, job, result)
        if trace is not None:
            # The root finished in the finally above, so the tree is
            # complete: distill it into the per-query resource ledger.
            ledger = build_ledger(trace)
            ledger["cache"] = cache_note["cache"]
            self.metrics.record_ledger(ledger)
            if self.events is not None:
                self.events.emit("query_ledger", **ledger)
        return result

    # ------------------------------------------------------------------
    # the cached / shared read path
    # ------------------------------------------------------------------

    @staticmethod
    def _remaining_s(ticket: QueryTicket) -> float | None:
        """Seconds until the ticket's deadline (None = unbounded)."""
        if ticket.deadline is None:
            return None
        return max(0.0, ticket.deadline - time.monotonic())

    def _cache_key(self, query, job: QueryJob) -> tuple[str, dict[str, int]]:
        """Fingerprint *query* at the tables' current ingest epochs."""
        epochs = {
            table: self.catalog.ingest_epoch(table)
            for table in query_tables(query)
        }
        key = plan_fingerprint(
            query,
            epochs=epochs,
            mode=job.mode,
            sma_set=job.sma_set,
            scan=self._scan_signature,
        )
        return key, epochs

    def _serve_cached(self, cached: QueryResult, wall: float) -> QueryResult:
        """A fresh result view over a cached entry: same relation bytes,
        this request's wall clock, zero I/O (nothing was read)."""
        empty = IoStats()
        return dataclasses.replace(
            cached,
            stats=empty,
            wall_seconds=wall,
            cost=self.disk_model.cost(empty),
            plan=PlanInfo(
                strategy="result_cache",
                reason=(
                    f"plan-fingerprint cache hit at epoch {cached.epoch}"
                ),
                table=cached.plan.table,
            ),
        )

    def _execute_read(
        self,
        session: Session,
        ticket: QueryTicket,
        job: QueryJob,
        query,
        cache_note: dict,
    ) -> QueryResult:
        """Cache lookup → attach-or-lead → solo, in that order."""
        cache = self.result_cache
        if cache is None:
            return self._execute_read_fresh(session, ticket, job, query)
        started = time.perf_counter()
        key, epochs = self._cache_key(query, job)
        verdict, cached = cache.acquire(key, timeout_s=self._remaining_s(ticket))
        if verdict == HIT:
            cache_note["cache"] = "hit"
            if job.trace is not None:
                job.trace.annotate(cache="hit")
            if self.events is not None:
                self.events.emit(
                    "cache_hit",
                    ticket=ticket.id,
                    kind=job.kind,
                    query=str(query),
                    epoch=cached.epoch,
                    trace_id=self._trace_id(job),
                )
            return self._serve_cached(cached, time.perf_counter() - started)
        # LEAD: compute, then publish (or abandon, waking any herd).
        try:
            result = self._execute_read_fresh(session, ticket, job, query)
        except BaseException:
            cache.abandon(key)
            raise
        cache_note["cache"] = "miss"
        if job.trace is not None:
            job.trace.annotate(cache="miss")
        tables = query_tables(query)
        store_key = key
        if result.epoch is not None and result.epoch != epochs.get(query.table):
            # The epoch advanced between fingerprinting and pinning: the
            # computed result belongs to the *newer* epoch.  Re-key it
            # there and wake the original herd empty-handed — an entry
            # keyed at epoch e always holds a result computed at epoch e.
            cache.abandon(key)
            store_key = plan_fingerprint(
                query,
                epochs={query.table: result.epoch},
                mode=job.mode,
                sma_set=job.sma_set,
                scan=self._scan_signature,
            )
        cache.complete(store_key, result, tables)
        if self.events is not None:
            self.events.emit(
                "cache_store",
                ticket=ticket.id,
                kind=job.kind,
                epoch=result.epoch,
                trace_id=self._trace_id(job),
            )
        return result

    def _execute_read_fresh(
        self, session: Session, ticket: QueryTicket, job: QueryJob, query
    ) -> QueryResult:
        """One actual execution: shared pass when possible, else solo."""
        if (
            self.shared_scans is not None
            and isinstance(query, AggregateQuery)
            and job.mode == "auto"
            and job.sma_set is None
        ):
            from repro.query.sharedscan import SharedScanDetached

            try:
                result = session.execute_shared(
                    query,
                    dispatcher=self.shared_scans,
                    timeout_s=self._remaining_s(ticket),
                )
            except SharedScanDetached:
                # Lost the pass (quarantine poison / leader failure):
                # re-execute solo against the quarantine-aware planner.
                if self.events is not None:
                    self.events.emit(
                        "shared_scan_detach",
                        ticket=ticket.id,
                        table=query.table,
                        trace_id=self._trace_id(job),
                    )
            else:
                if self.events is not None:
                    strategy = result.plan.strategy
                    self.events.emit(
                        "shared_scan_attach"
                        if strategy == "shared_scan(follow)"
                        else "shared_scan_lead",
                        ticket=ticket.id,
                        table=query.table,
                        strategy=strategy,
                        trace_id=self._trace_id(job),
                    )
                return result
        return session.execute(query, mode=job.mode, sma_set=job.sma_set)

    def _observe_ingest(
        self, ticket: QueryTicket, job: QueryJob, result: QueryResult
    ) -> None:
        """Ingest telemetry for one applied DML batch."""
        rows_affected = result.rows[0][0] if result.rows else 0
        epoch = result.epoch if result.epoch is not None else 0
        table = result.plan.table or ""
        self.metrics.record_ingest(
            table, result.plan.strategy, rows_affected, epoch
        )
        # The epoch bump already makes old fingerprints unreachable;
        # this sweep just stops dead entries from squatting LRU slots
        # under sustained ingest.
        if table and self.result_cache is not None:
            evicted = self.result_cache.invalidate_table(table)
            if evicted and self.events is not None:
                self.events.emit(
                    "cache_invalidate",
                    table=table,
                    entries=evicted,
                    reason="epoch_advance",
                )
        if self.events is not None:
            self.events.emit(
                "ingest_applied",
                ticket=ticket.id,
                table=table,
                op=result.plan.strategy,
                rows_affected=rows_affected,
                epoch=epoch,
                latency_s=result.wall_seconds,
                trace_id=self._trace_id(job),
            )

    def _observe_success(
        self, ticket: QueryTicket, job: QueryJob, result: QueryResult
    ) -> None:
        """Post-success telemetry: finish event, grading gauges, slow log."""
        info = result.plan
        crossed = False
        if info.table is not None and info.fraction_ambivalent is not None:
            crossed = self.metrics.record_grading(
                info.table,
                info.fraction_qualifying or 0.0,
                info.fraction_ambivalent,
                info.fraction_disqualifying or 0.0,
            )
        if self.events is None:
            return
        self.events.emit(
            "query_finish",
            ticket=ticket.id,
            kind=job.kind,
            outcome="completed",
            latency_s=result.wall_seconds,
            simulated_s=result.simulated_seconds,
            strategy=info.strategy,
            io=result.stats.as_dict(),
            trace_id=self._trace_id(job),
        )
        if crossed:
            self.events.emit(
                "ambivalent_warning",
                table=info.table,
                fraction_ambivalent=info.fraction_ambivalent,
                break_even=self.metrics.ambivalent_break_even,
                sma_set=info.sma_set_name,
                trace_id=self._trace_id(job),
            )
        if (
            self.slow_query_s is not None
            and result.wall_seconds >= self.slow_query_s
        ):
            # Re-plan outside the (already closed) query context to
            # capture EXPLAIN; the grading re-reads charge the catalog's
            # default window, not any query's.
            try:
                explanation = self.explain(
                    job.query, mode=job.mode, sma_set=job.sma_set
                )
                plan_text = explanation.render()
            except Exception as exc:  # noqa: BLE001 - capture is best-effort
                plan_text = f"<explain failed: {exc}>"
            self.events.emit(
                "slow_query",
                ticket=ticket.id,
                kind=job.kind,
                latency_s=result.wall_seconds,
                threshold_s=self.slow_query_s,
                query=str(job.query),
                explain=plan_text,
                trace_id=self._trace_id(job),
            )

    def _record_skipped(self, ticket: QueryTicket) -> None:
        """Metrics for tickets settled without running (queued-cancel/expire)."""
        job: QueryJob = ticket.payload
        if job.is_dml:
            self.metrics.write_queue_exit()
        if ticket.state is TicketState.TIMED_OUT:
            outcome = "timed_out"
            self.metrics.record_timeout(job.kind)
        else:
            outcome = "cancelled"
            self.metrics.record_cancelled(job.kind)
        if job.trace is not None:
            job.trace.annotate(outcome=outcome, skipped=True)
            self.tracer.finish(job.trace)
        if self.events is not None:
            self.events.emit(
                "query_finish",
                ticket=ticket.id,
                kind=job.kind,
                outcome=outcome,
                skipped=True,
                trace_id=self._trace_id(job),
            )
