"""Text rendering of service metrics and workload results.

This is the ``repro serve --report`` surface: a compact, monospace dump
of the :class:`~repro.server.metrics.MetricsRegistry` snapshot plus the
workload summary, built on the same table formatter the paper
experiments use.
"""

from __future__ import annotations

import datetime
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.workload import WorkloadResult


def _latency_row(label: str, data: dict) -> tuple:
    # Lazy import: repro.bench pulls in this package via the concurrency
    # experiment, so a module-level bench import would be cyclic.
    from repro.bench.harness import human_seconds

    if not data or not data.get("count"):
        return (label, 0, "-", "-", "-", "-", "-")
    return (
        label,
        int(data["count"]),
        human_seconds(data["mean_s"]),
        human_seconds(data["p50_s"]),
        human_seconds(data["p95_s"]),
        human_seconds(data["p99_s"]),
        human_seconds(data["max_s"]),
    )


def render_metrics(snapshot: dict) -> str:
    """Render one metrics snapshot (see ``MetricsRegistry.snapshot``)."""
    from repro.bench.harness import format_table

    lines: list[str] = ["== query service metrics =="]

    service = snapshot.get("service") or {}
    if service:
        started = datetime.datetime.fromtimestamp(
            service["started_at"], tz=datetime.timezone.utc
        )
        lines.append(
            f"service: started {started.isoformat(timespec='seconds')}, "
            f"uptime {service['uptime_s']:.1f}s"
        )

    queries = snapshot["queries"]
    lines.append(
        "queries: "
        + ", ".join(f"{name} {queries[name]}" for name in (
            "submitted", "completed", "failed", "rejected",
            "timed_out", "cancelled", "in_flight",
        ))
    )
    by_kind = queries.get("by_kind") or {}
    for kind, outcomes in by_kind.items():
        lines.append(
            f"  {kind}: "
            + ", ".join(f"{name} {count}" for name, count in outcomes.items())
        )

    latency = snapshot["latency_s"]
    rows = [_latency_row("all", latency["overall"])]
    rows.extend(
        _latency_row(kind, data) for kind, data in latency["by_kind"].items()
    )
    rows.append(_latency_row("queue wait", snapshot["queue_wait_s"]))
    lines.append("")
    lines.append(
        format_table(
            ["latency", "count", "mean", "p50", "p95", "p99", "max"], rows
        )
    )

    io = snapshot["io"]
    lines.append("")
    lines.append("io (summed per-query deltas):")
    lines.append(
        f"  pages: {io['page_reads']} physical "
        f"({io['sequential_page_reads']} seq / {io['skip_page_reads']} skip / "
        f"{io['random_page_reads']} rnd), {io['buffer_hits']} buffer hits "
        f"(hit rate {io['buffer_hit_rate']:.1%})"
    )
    sma_reads = io.get("sma_page_reads", 0)
    heap_reads = io.get("heap_page_reads", 0)
    if sma_reads or heap_reads:
        total = sma_reads + heap_reads
        lines.append(
            f"  files: {sma_reads} SMA-file / {heap_reads} heap page reads "
            f"(SMA fraction {sma_reads / total:.1%})"
        )
    lines.append(
        f"  buckets: {io['buckets_fetched']} fetched, "
        f"{io['buckets_skipped']} skipped "
        f"(skip rate {io['bucket_skip_rate']:.1%})"
    )
    lines.append(
        f"  tuples scanned: {io['tuples_scanned']}, "
        f"SMA entries read: {io['sma_entries_read']}"
    )

    plans = snapshot.get("plans") or {}
    if plans:
        lines.append("")
        lines.append("plans (completed queries by chosen strategy):")
        lines.append(
            "  " + ", ".join(
                f"{strategy} {count}" for strategy, count in plans.items()
            )
        )

    cache = snapshot.get("result_cache")
    if cache:
        lines.append("")
        lines.append(
            "result cache: "
            f"{cache['entries']}/{cache['capacity']} entries, "
            f"{cache['hits']} hits + {cache['flight_hits']} flight hits / "
            f"{cache['misses']} misses (hit rate {cache['hit_rate']:.1%}), "
            f"{cache['stores']} stores, {cache['evictions']} evictions, "
            f"{cache['invalidations']} invalidations"
        )

    shared = snapshot.get("shared_scan")
    if shared:
        lines.append("")
        lines.append(
            "shared scans: "
            f"{shared['leads']} passes led, {shared['attaches']} attaches, "
            f"{shared['detaches']} detaches, "
            f"mean fan-in {shared['mean_fan_in']:.2f} "
            f"(max {shared['fan_in_max']})"
        )
    return "\n".join(lines)


def render_workload(result: "WorkloadResult") -> str:
    """One-paragraph workload summary (throughput + outcome counts)."""
    from repro.bench.harness import human_seconds

    lines = [
        "== workload run ==",
        f"{result.total} queries in {human_seconds(result.wall_seconds)} wall "
        f"→ {result.throughput_qps:.1f} completed queries/s",
        f"outcomes: {result.completed} completed, {result.rejected} rejected, "
        f"{result.timed_out} timed out, {result.cancelled} cancelled, "
        f"{result.failed} failed",
    ]
    return "\n".join(lines)
