"""Workload replay against a :class:`~repro.server.service.QueryService`.

The :class:`WorkloadDriver` replays a weighted mix of queries at a
target concurrency, in one of the two classic harness shapes:

* **closed loop** — *clients* threads each issue their next query as
  soon as the previous one finishes (concurrency is fixed, arrival rate
  adapts to service speed);
* **open loop** — a dispatcher submits at a fixed arrival rate without
  waiting (queue pressure builds when the service is slower than the
  rate; beyond the admission bound, submissions are *rejected* and
  counted, never blocked).

Selection from the mix is deterministic (weighted round-robin with a
per-client offset), so a workload run is exactly reproducible and —
with ``keep_results=True`` — byte-comparable against serial execution
of the same schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError, ServerOverloadedError
from repro.query.query import AggregateQuery, ScanQuery
from repro.query.session import QueryResult
from repro.server.executor import QueryTicket
from repro.server.service import QueryService


@dataclass(frozen=True)
class WorkloadQuery:
    """One entry of the mix: a named query with an integer weight."""

    name: str
    query: AggregateQuery | ScanQuery | str
    mode: str = "auto"
    sma_set: str | None = None
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ReproError(f"weight must be positive, got {self.weight}")


@dataclass
class WorkloadOutcome:
    """What happened to one scheduled query."""

    name: str
    schedule_index: int
    result: QueryResult | None = None
    error: str | None = None


@dataclass
class WorkloadResult:
    """Aggregate outcome of one driver run."""

    total: int
    completed: int
    failed: int
    rejected: int
    timed_out: int
    cancelled: int
    wall_seconds: float
    #: final metrics snapshot of the service (includes pre-run traffic
    #: only if the caller reused a registry)
    metrics: dict = field(default_factory=dict)
    #: per-query outcomes in schedule order (results kept only when the
    #: driver ran with ``keep_results=True``)
    outcomes: list[WorkloadOutcome] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0


def expand_mix(mix: list[WorkloadQuery]) -> list[WorkloadQuery]:
    """Weighted round-robin schedule unit: each entry repeated `weight` times."""
    if not mix:
        raise ReproError("workload mix must not be empty")
    expanded: list[WorkloadQuery] = []
    for entry in mix:
        expanded.extend([entry] * entry.weight)
    return expanded


class WorkloadDriver:
    """Replays a query mix against a started :class:`QueryService`."""

    def __init__(self, service: QueryService, mix: list[WorkloadQuery]):
        self.service = service
        self.mix = list(mix)
        self._expanded = expand_mix(self.mix)

    # ------------------------------------------------------------------
    # schedules
    # ------------------------------------------------------------------

    def _pick(self, index: int) -> WorkloadQuery:
        return self._expanded[index % len(self._expanded)]

    def schedule(self, total: int) -> list[WorkloadQuery]:
        """The deterministic global schedule of a *total*-query run."""
        return [self._pick(i) for i in range(total)]

    # ------------------------------------------------------------------
    # closed loop
    # ------------------------------------------------------------------

    def run_closed_loop(
        self,
        *,
        clients: int = 8,
        queries_per_client: int = 8,
        timeout_s: float | None = None,
        keep_results: bool = False,
    ) -> WorkloadResult:
        """*clients* threads issue back-to-back queries, each drawn from
        the shared schedule; an overloaded submit counts as rejected and
        the client moves on."""
        if clients <= 0 or queries_per_client <= 0:
            raise ReproError("clients and queries_per_client must be positive")
        total = clients * queries_per_client
        outcomes: list[WorkloadOutcome | None] = [None] * total
        started = time.perf_counter()

        def client_loop(client_no: int) -> None:
            for i in range(queries_per_client):
                index = client_no * queries_per_client + i
                entry = self._pick(index)
                outcomes[index] = self._issue_and_wait(
                    entry, index, timeout_s=timeout_s, keep_results=keep_results
                )

        threads = [
            threading.Thread(
                target=client_loop, args=(c,), name=f"workload-client-{c}"
            )
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        return self._summarize(outcomes, wall)

    # ------------------------------------------------------------------
    # open loop
    # ------------------------------------------------------------------

    def run_open_loop(
        self,
        *,
        rate_qps: float,
        total: int,
        timeout_s: float | None = None,
        keep_results: bool = False,
        drain_timeout_s: float = 120.0,
    ) -> WorkloadResult:
        """Submit *total* queries at a fixed arrival rate, then drain.

        Submissions never block: when the admission queue is full the
        query is rejected and counted, which is exactly the back-pressure
        behaviour the service guarantees.
        """
        if rate_qps <= 0 or total <= 0:
            raise ReproError("rate_qps and total must be positive")
        interval = 1.0 / rate_qps
        issued: list[tuple[int, WorkloadQuery, QueryTicket | None, str | None]] = []
        started = time.perf_counter()
        next_at = started
        for index in range(total):
            now = time.perf_counter()
            if now < next_at:
                time.sleep(next_at - now)
            next_at += interval
            entry = self._pick(index)
            try:
                ticket = self.service.submit(
                    entry.query,
                    mode=entry.mode,
                    sma_set=entry.sma_set,
                    timeout_s=timeout_s,
                    kind=entry.name,
                )
            except ServerOverloadedError as exc:
                issued.append((index, entry, None, str(exc)))
            else:
                issued.append((index, entry, ticket, None))

        outcomes: list[WorkloadOutcome | None] = [None] * total
        for index, entry, ticket, error in issued:
            if ticket is None:
                outcomes[index] = WorkloadOutcome(
                    entry.name, index, error=f"rejected: {error}"
                )
                continue
            outcomes[index] = self._collect(
                entry, index, ticket, keep_results=keep_results,
                wait_timeout=drain_timeout_s,
            )
        wall = time.perf_counter() - started
        return self._summarize(outcomes, wall)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------

    def _issue_and_wait(
        self,
        entry: WorkloadQuery,
        index: int,
        *,
        timeout_s: float | None,
        keep_results: bool,
    ) -> WorkloadOutcome:
        try:
            ticket = self.service.submit(
                entry.query,
                mode=entry.mode,
                sma_set=entry.sma_set,
                timeout_s=timeout_s,
                kind=entry.name,
            )
        except ServerOverloadedError as exc:
            return WorkloadOutcome(entry.name, index, error=f"rejected: {exc}")
        return self._collect(entry, index, ticket, keep_results=keep_results)

    @staticmethod
    def _collect(
        entry: WorkloadQuery,
        index: int,
        ticket: QueryTicket,
        *,
        keep_results: bool,
        wait_timeout: float | None = None,
    ) -> WorkloadOutcome:
        from repro.errors import QueryCancelledError, QueryTimeoutError

        try:
            result = ticket.result(wait_timeout)
        except QueryTimeoutError as exc:
            return WorkloadOutcome(entry.name, index, error=f"timeout: {exc}")
        except QueryCancelledError as exc:
            return WorkloadOutcome(entry.name, index, error=f"cancelled: {exc}")
        except BaseException as exc:  # noqa: BLE001 - workload reports, not raises
            return WorkloadOutcome(entry.name, index, error=f"failed: {exc}")
        return WorkloadOutcome(
            entry.name, index, result=result if keep_results else None
        )

    def _summarize(
        self, outcomes: list[WorkloadOutcome | None], wall: float
    ) -> WorkloadResult:
        done = [o for o in outcomes if o is not None]
        completed = sum(1 for o in done if o.error is None)
        rejected = sum(1 for o in done if o.error and o.error.startswith("rejected"))
        timed_out = sum(1 for o in done if o.error and o.error.startswith("timeout"))
        cancelled = sum(1 for o in done if o.error and o.error.startswith("cancelled"))
        failed = len(done) - completed - rejected - timed_out - cancelled
        return WorkloadResult(
            total=len(done),
            completed=completed,
            failed=failed,
            rejected=rejected,
            timed_out=timed_out,
            cancelled=cancelled,
            wall_seconds=wall,
            metrics=self.service.metrics.snapshot(),
            outcomes=done,
        )


def default_mix(table: str = "LINEITEM") -> list[WorkloadQuery]:
    """The serving benchmark's standard mix on a loaded LINEITEM.

    Query-1-style grouped aggregations at three selectivities (all
    SMA-answerable with the stock ``q1`` set) plus a thin range scan that
    exercises SMA_Scan bucket skipping — the ISSUE's "Query-1-style
    aggregations and range scans" blend, weighted toward aggregation.
    """
    import datetime

    from repro.lang.predicate import and_, cmp
    from repro.tpcd.queries import query1

    scan = ScanQuery(
        table=table,
        where=and_(
            cmp("L_SHIPDATE", ">=", datetime.date(1998, 9, 1)),
            cmp("L_SHIPDATE", "<=", datetime.date(1998, 10, 31)),
        ),
        columns=("L_ORDERKEY", "L_SHIPDATE", "L_QUANTITY"),
    )
    return [
        WorkloadQuery("q1_d90", query1(delta=90, table=table), weight=3),
        WorkloadQuery("q1_d60", query1(delta=60, table=table), weight=2),
        WorkloadQuery("q1_d120", query1(delta=120, table=table), weight=2),
        WorkloadQuery("range_scan", scan, weight=2),
    ]


def zipf_mix(
    table: str = "LINEITEM",
    *,
    distinct: int = 16,
    s: float = 1.2,
    scale: int = 100,
) -> list[WorkloadQuery]:
    """A zipf-skewed dashboard mix: *distinct* Query-1 variants drawn
    with frequency ``freq(rank) ∝ 1 / rank**s``.

    Rank 1 is the hottest plan; with the defaults (``distinct=16``,
    ``s=1.2``) it draws ~1/3 of the traffic, which is the repeat-heavy
    shape the plan-fingerprint result cache (C5) is built for.  Each
    variant uses a different ``delta`` window, so the variants are
    genuinely distinct logical plans — the cache can only merge true
    repeats, while shared scans may still coalesce different variants
    hitting the table concurrently.

    The returned entries all carry weight 1 and are *pre-interleaved*
    round-robin (rank 1 appears in every round, rank k in the rounds
    below its zipf count): :func:`expand_mix` would repeat a weighted
    entry as one contiguous block, which at zipf scales would hand each
    closed-loop client a long run of a single plan instead of a skewed
    blend.  Deterministic, like every mix.
    """
    from repro.tpcd.queries import query1

    if distinct <= 0:
        raise ReproError(f"distinct must be positive, got {distinct}")
    counts = {
        rank: max(1, round(scale / rank**s)) for rank in range(1, distinct + 1)
    }
    variants = {
        rank: WorkloadQuery(
            f"q1_z{rank:02d}",
            query1(delta=30 + 10 * (rank - 1), table=table),
        )
        for rank in range(1, distinct + 1)
    }
    mix = []
    for round_no in range(max(counts.values())):
        for rank in range(1, distinct + 1):
            if counts[rank] > round_no:
                mix.append(variants[rank])
    return mix
