"""Per-query service metrics: latency histograms, queue waits, I/O totals.

The :class:`MetricsRegistry` is the single write target for everything
the query service observes: admission outcomes, queue wait time,
per-query latency (overall and per workload kind) and the per-query
:class:`~repro.storage.stats.IoStats` deltas (buffer hit rate, buckets
skipped vs fetched).  All recording methods are thread-safe; workers
call them concurrently.

:meth:`MetricsRegistry.snapshot` returns a plain nested dict — the
programmatic surface — and :mod:`repro.server.report` renders that dict
as the ``repro serve --report`` text dump.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left, insort

from repro.storage.stats import IoStats

#: Percentiles reported by every latency snapshot.
REPORTED_PERCENTILES = (50.0, 90.0, 95.0, 99.0)

#: Default fixed histogram bounds for latency-like metrics (seconds).
#: Chosen to straddle both in-memory microbenchmarks and simulated-disk
#: scale queries; rendered as cumulative Prometheus ``le`` buckets.
DEFAULT_LATENCY_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: The paper's Figure 5 break-even: above ~25 % ambivalent buckets an
#: SMA plan stops beating the plain scan.  Overridable per registry.
DEFAULT_AMBIVALENT_BREAK_EVEN = 0.25


class FixedHistogram:
    """Fixed-bound histogram (Prometheus-style cumulative buckets).

    Unlike :class:`LatencyRecorder` (exact percentiles over a decimated
    sample), this is the constant-memory, mergeable-across-scrapes shape
    the ``/metrics`` endpoint wants.  Not thread-safe on its own — the
    registry locks around it.
    """

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # final slot: +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def as_dict(self) -> dict:
        """Cumulative buckets, ending in the mandatory ``+Inf`` bucket."""
        buckets = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            buckets.append({"le": bound, "count": running})
        buckets.append({"le": "+Inf", "count": self.count})
        return {"buckets": buckets, "sum": self.sum, "count": self.count}


class GradingGauges:
    """Per-table grading-mix telemetry (the Figure 5 watch-dog).

    Tracks the mean and most-recent qualifying/ambivalent/disqualifying
    fractions over completed SMA-graded queries, plus how many times the
    ambivalent fraction *crossed* the break-even threshold from below
    (each crossing is one warning — a steady over-threshold workload
    warns once, not per query).  Not thread-safe on its own.
    """

    __slots__ = (
        "queries", "warnings", "_sums", "_last", "_over_threshold",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.warnings = 0
        self._sums = [0.0, 0.0, 0.0]
        self._last = [0.0, 0.0, 0.0]
        self._over_threshold = False

    def record(
        self,
        qualifying: float,
        ambivalent: float,
        disqualifying: float,
        threshold: float,
    ) -> bool:
        """Fold one query's grading in; True when this one crossed over."""
        self.queries += 1
        fractions = (qualifying, ambivalent, disqualifying)
        for i, fraction in enumerate(fractions):
            self._sums[i] += fraction
            self._last[i] = fraction
        crossed = ambivalent >= threshold and not self._over_threshold
        self._over_threshold = ambivalent >= threshold
        if crossed:
            self.warnings += 1
        return crossed

    def as_dict(self) -> dict:
        n = self.queries or 1
        names = ("qualifying", "ambivalent", "disqualifying")
        out: dict = {"queries": self.queries, "warnings": self.warnings}
        for i, name in enumerate(names):
            out[f"mean_{name}"] = self._sums[i] / n
            out[f"last_{name}"] = self._last[i]
        return out


class LatencyRecorder:
    """Streaming latency accumulator with a bounded, decimated sample.

    Exact count/total/min/max are kept forever.  For percentiles a
    sample of observations is retained; when it outgrows *max_samples*
    it is decimated deterministically (every other retained sample is
    dropped and the keep-stride doubles), so memory stays bounded while
    the sample remains spread over the whole run rather than a recent
    window.  Not thread-safe on its own — the registry locks around it.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._samples: list[float] = []
        self._stride = 1

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if (self.count - 1) % self._stride == 0:
            insort(self._samples, seconds)
            if len(self._samples) > self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained sample (0 when empty)."""
        if not self._samples:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = max(0, min(len(self._samples) - 1, round(q / 100.0 * (len(self._samples) - 1))))
        return self._samples[rank]

    def as_dict(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        out: dict[str, float] = {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min,
            "max_s": self.max,
        }
        for q in REPORTED_PERCENTILES:
            out[f"p{q:g}_s"] = self.percentile(q)
        return out


class MetricsRegistry:
    """Thread-safe aggregation point for all query-service observations."""

    def __init__(
        self,
        max_samples: int = 4096,
        *,
        ambivalent_break_even: float = DEFAULT_AMBIVALENT_BREAK_EVEN,
        latency_bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ):
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self.ambivalent_break_even = ambivalent_break_even
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.timed_out = 0
        self.cancelled = 0
        self._latency = LatencyRecorder(max_samples)
        self._latency_by_kind: dict[str, LatencyRecorder] = {}
        self._queue_wait = LatencyRecorder(max_samples)
        self._latency_hist = FixedHistogram(latency_bounds)
        self._queue_wait_hist = FixedHistogram(latency_bounds)
        self._io = IoStats()
        self._plans: dict[str, int] = {}
        #: per-kind outcome counters — {kind: {outcome: count}}
        self._by_kind: dict[str, dict[str, int]] = {}
        #: per-table grading gauges — {table: GradingGauges}
        self._grading: dict[str, GradingGauges] = {}
        self._sma_quarantined = 0
        self._sma_repaired = 0
        #: per-table quarantine counts — {table: count}
        self._quarantined_by_table: dict[str, int] = {}
        #: scan-backend info (set by the service) — {backend, scan_workers}
        self._scan_info: dict | None = None
        #: ingest telemetry — rows per (table, op), per-table epoch
        #: gauges, write-queue depth (DML jobs admitted but not settled)
        self._ingest_rows: dict[str, dict[str, int]] = {}
        self._ingest_batches = 0
        self._ingest_epochs: dict[str, int] = {}
        self._intents_replayed = 0
        self._intents_rolled_back = 0
        self._write_queue_depth = 0
        self._write_queue_peak = 0
        #: resource-ledger aggregates — one sample per traced query:
        #: wall seconds by span kind and per-table I/O attribution
        self._ledger_queries = 0
        self._ledger_queue_wait_s = 0.0
        self._ledger_fan_out = 0
        self._ledger_span_s: dict[str, float] = {}
        self._ledger_tables: dict[str, dict[str, int]] = {}

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def _bump_kind(self, kind: str, outcome: str) -> None:
        outcomes = self._by_kind.get(kind)
        if outcomes is None:
            outcomes = self._by_kind[kind] = {}
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    # ------------------------------------------------------------------
    # recording (called by the service / executor)
    # ------------------------------------------------------------------

    def set_scan_info(self, *, backend: str, scan_workers: int) -> None:
        """Publish the serving tier's scan backend configuration."""
        with self._lock:
            self._scan_info = {
                "backend": backend,
                "scan_workers": int(scan_workers),
            }

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self._queue_wait.record(seconds)
            self._queue_wait_hist.observe(seconds)

    def record_success(
        self,
        kind: str,
        latency_s: float,
        stats: IoStats | None = None,
        strategy: str | None = None,
    ) -> None:
        """One query completed: latency, its exact I/O counter delta, and
        the planner strategy that served it ("sma_gaggr", "seq_scan", ...)."""
        with self._lock:
            self.completed += 1
            self._latency.record(latency_s)
            self._latency_hist.observe(latency_s)
            recorder = self._latency_by_kind.get(kind)
            if recorder is None:
                recorder = self._latency_by_kind[kind] = LatencyRecorder(
                    self._max_samples
                )
            recorder.record(latency_s)
            self._bump_kind(kind, "completed")
            if stats is not None:
                self._io.merge(stats)
            if strategy is not None:
                self._plans[strategy] = self._plans.get(strategy, 0) + 1

    def record_grading(
        self,
        table: str,
        qualifying: float,
        ambivalent: float,
        disqualifying: float,
    ) -> bool:
        """Fold one SMA-graded query's fractions into the table's gauges.

        Returns True when this query pushed the table's ambivalent
        fraction across the break-even threshold from below — callers
        turn that into a warning event.
        """
        with self._lock:
            gauges = self._grading.get(table)
            if gauges is None:
                gauges = self._grading[table] = GradingGauges()
            return gauges.record(
                qualifying, ambivalent, disqualifying, self.ambivalent_break_even
            )

    def record_failure(self, kind: str) -> None:
        with self._lock:
            self.failed += 1
            self._bump_kind(kind, "failed")

    def record_timeout(self, kind: str) -> None:
        with self._lock:
            self.timed_out += 1
            self._bump_kind(kind, "timed_out")

    def record_cancelled(self, kind: str) -> None:
        with self._lock:
            self.cancelled += 1
            self._bump_kind(kind, "cancelled")

    def record_quarantine(self, table: str, sma_set: str) -> None:
        """One SMA definition failed integrity checks and was sidelined;
        the planner fell back to the heap for that slice of the plan."""
        with self._lock:
            self._sma_quarantined += 1
            self._quarantined_by_table[table] = (
                self._quarantined_by_table.get(table, 0) + 1
            )

    def record_repair(self, table: str, sma_set: str) -> None:
        with self._lock:
            self._sma_repaired += 1

    def record_ingest(
        self, table: str, op: str, rows: int, epoch: int
    ) -> None:
        """One applied DML batch: rows by (table, op) plus the table's
        new ingest epoch gauge."""
        with self._lock:
            by_op = self._ingest_rows.setdefault(table, {})
            by_op[op] = by_op.get(op, 0) + int(rows)
            self._ingest_batches += 1
            self._ingest_epochs[table] = int(epoch)

    def record_ledger(self, ledger: dict) -> None:
        """Fold one per-query resource ledger into the running aggregates.

        *ledger* is the dict built by
        :func:`repro.obs.collect.build_ledger` — queue wait, scatter
        fan-out, wall seconds by span kind, and per-table I/O counters
        attributed from the merged span tree.
        """
        with self._lock:
            self._ledger_queries += 1
            self._ledger_queue_wait_s += float(ledger.get("queue_wait_s", 0.0))
            self._ledger_fan_out += int(ledger.get("fan_out", 0))
            for kind, seconds in (ledger.get("wall_by_kind") or {}).items():
                self._ledger_span_s[kind] = (
                    self._ledger_span_s.get(kind, 0.0) + float(seconds)
                )
            for table, counters in (ledger.get("tables") or {}).items():
                totals = self._ledger_tables.setdefault(table, {})
                for name, value in counters.items():
                    totals[name] = totals.get(name, 0) + int(value)

    def record_intent_resolution(self, action: str) -> None:
        """One write-ahead intent resolved during repair
        (``"replayed"`` or ``"rolled_back"``)."""
        with self._lock:
            if action == "replayed":
                self._intents_replayed += 1
            else:
                self._intents_rolled_back += 1

    def write_queue_enter(self) -> int:
        """A DML job was admitted; returns the new write-queue depth."""
        with self._lock:
            self._write_queue_depth += 1
            if self._write_queue_depth > self._write_queue_peak:
                self._write_queue_peak = self._write_queue_depth
            return self._write_queue_depth

    def write_queue_exit(self) -> int:
        """A DML job settled (completed, failed, or skipped)."""
        with self._lock:
            if self._write_queue_depth > 0:
                self._write_queue_depth -= 1
            return self._write_queue_depth

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def io_totals(self) -> IoStats:
        """Summed per-query I/O deltas of every completed query."""
        with self._lock:
            return self._io.snapshot()

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far.

        Shape::

            {
              "service": {started_at, uptime_s, ambivalent_break_even},
              "queries": {submitted, completed, failed, rejected,
                          timed_out, cancelled, in_flight,
                          by_kind: {kind: {outcome: count}}},
              "latency_s": {"overall": {...}, "by_kind": {kind: {...}}},
              "queue_wait_s": {...},
              "latency_hist": {buckets, sum, count},
              "queue_wait_hist": {buckets, sum, count},
              "io": {<IoStats counters>, buffer_hit_rate,
                     bucket_skip_rate},
              "plans": {strategy: completed count},
              "grading": {table: {queries, warnings,
                                  mean_/last_ x 3 fractions}},
              "integrity": {sma_quarantined, sma_repaired,
                            by_table: {table: count}},
              "scan": {backend, scan_workers[, pool: {...gauges}]}
                      or None when no service published its config,
              "ingest": {batches, rows_total: {table: {op: rows}},
                         epochs: {table: epoch}, intents_replayed,
                         intents_rolled_back, write_queue_depth,
                         write_queue_peak},
              "ledger": {queries, queue_wait_s, fan_out,
                         span_seconds: {kind: s},
                         tables: {table: {counter: n}}},
            }
        """
        with self._lock:
            settled = (
                self.completed + self.failed + self.timed_out + self.cancelled
            )
            io = self._io
            return {
                "service": {
                    "started_at": self.started_at,
                    "uptime_s": self.uptime_s,
                    "ambivalent_break_even": self.ambivalent_break_even,
                },
                "queries": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected": self.rejected,
                    "timed_out": self.timed_out,
                    "cancelled": self.cancelled,
                    "in_flight": self.submitted - settled,
                    "by_kind": {
                        kind: dict(sorted(outcomes.items()))
                        for kind, outcomes in sorted(self._by_kind.items())
                    },
                },
                "latency_s": {
                    "overall": self._latency.as_dict(),
                    "by_kind": {
                        kind: recorder.as_dict()
                        for kind, recorder in sorted(self._latency_by_kind.items())
                    },
                },
                "queue_wait_s": self._queue_wait.as_dict(),
                "latency_hist": self._latency_hist.as_dict(),
                "queue_wait_hist": self._queue_wait_hist.as_dict(),
                "io": {
                    **io.as_dict(),
                    "buffer_hit_rate": io.buffer_hit_rate,
                    "bucket_skip_rate": io.bucket_skip_rate,
                },
                "plans": dict(sorted(self._plans.items())),
                "grading": {
                    table: gauges.as_dict()
                    for table, gauges in sorted(self._grading.items())
                },
                "integrity": {
                    "sma_quarantined": self._sma_quarantined,
                    "sma_repaired": self._sma_repaired,
                    "by_table": dict(sorted(self._quarantined_by_table.items())),
                },
                "scan": dict(self._scan_info) if self._scan_info else None,
                "ingest": {
                    "batches": self._ingest_batches,
                    "rows_total": {
                        table: dict(sorted(by_op.items()))
                        for table, by_op in sorted(self._ingest_rows.items())
                    },
                    "epochs": dict(sorted(self._ingest_epochs.items())),
                    "intents_replayed": self._intents_replayed,
                    "intents_rolled_back": self._intents_rolled_back,
                    "write_queue_depth": self._write_queue_depth,
                    "write_queue_peak": self._write_queue_peak,
                },
                "ledger": {
                    "queries": self._ledger_queries,
                    "queue_wait_s": self._ledger_queue_wait_s,
                    "fan_out": self._ledger_fan_out,
                    "span_seconds": dict(sorted(self._ledger_span_s.items())),
                    "tables": {
                        table: dict(sorted(counters.items()))
                        for table, counters in sorted(self._ledger_tables.items())
                    },
                },
            }
