"""Per-query service metrics: latency histograms, queue waits, I/O totals.

The :class:`MetricsRegistry` is the single write target for everything
the query service observes: admission outcomes, queue wait time,
per-query latency (overall and per workload kind) and the per-query
:class:`~repro.storage.stats.IoStats` deltas (buffer hit rate, buckets
skipped vs fetched).  All recording methods are thread-safe; workers
call them concurrently.

:meth:`MetricsRegistry.snapshot` returns a plain nested dict — the
programmatic surface — and :mod:`repro.server.report` renders that dict
as the ``repro serve --report`` text dump.
"""

from __future__ import annotations

import threading
from bisect import insort

from repro.storage.stats import IoStats

#: Percentiles reported by every latency snapshot.
REPORTED_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


class LatencyRecorder:
    """Streaming latency accumulator with a bounded, decimated sample.

    Exact count/total/min/max are kept forever.  For percentiles a
    sample of observations is retained; when it outgrows *max_samples*
    it is decimated deterministically (every other retained sample is
    dropped and the keep-stride doubles), so memory stays bounded while
    the sample remains spread over the whole run rather than a recent
    window.  Not thread-safe on its own — the registry locks around it.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._samples: list[float] = []
        self._stride = 1

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if (self.count - 1) % self._stride == 0:
            insort(self._samples, seconds)
            if len(self._samples) > self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained sample (0 when empty)."""
        if not self._samples:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = max(0, min(len(self._samples) - 1, round(q / 100.0 * (len(self._samples) - 1))))
        return self._samples[rank]

    def as_dict(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        out: dict[str, float] = {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min,
            "max_s": self.max,
        }
        for q in REPORTED_PERCENTILES:
            out[f"p{q:g}_s"] = self.percentile(q)
        return out


class MetricsRegistry:
    """Thread-safe aggregation point for all query-service observations."""

    def __init__(self, max_samples: int = 4096):
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.timed_out = 0
        self.cancelled = 0
        self._latency = LatencyRecorder(max_samples)
        self._latency_by_kind: dict[str, LatencyRecorder] = {}
        self._queue_wait = LatencyRecorder(max_samples)
        self._io = IoStats()
        self._plans: dict[str, int] = {}

    # ------------------------------------------------------------------
    # recording (called by the service / executor)
    # ------------------------------------------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self._queue_wait.record(seconds)

    def record_success(
        self,
        kind: str,
        latency_s: float,
        stats: IoStats | None = None,
        strategy: str | None = None,
    ) -> None:
        """One query completed: latency, its exact I/O counter delta, and
        the planner strategy that served it ("sma_gaggr", "seq_scan", ...)."""
        with self._lock:
            self.completed += 1
            self._latency.record(latency_s)
            recorder = self._latency_by_kind.get(kind)
            if recorder is None:
                recorder = self._latency_by_kind[kind] = LatencyRecorder(
                    self._max_samples
                )
            recorder.record(latency_s)
            if stats is not None:
                self._io.merge(stats)
            if strategy is not None:
                self._plans[strategy] = self._plans.get(strategy, 0) + 1

    def record_failure(self, kind: str) -> None:
        with self._lock:
            self.failed += 1

    def record_timeout(self, kind: str) -> None:
        with self._lock:
            self.timed_out += 1

    def record_cancelled(self, kind: str) -> None:
        with self._lock:
            self.cancelled += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def io_totals(self) -> IoStats:
        """Summed per-query I/O deltas of every completed query."""
        with self._lock:
            return self._io.snapshot()

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far.

        Shape::

            {
              "queries": {submitted, completed, failed, rejected,
                          timed_out, cancelled, in_flight},
              "latency_s": {"overall": {...}, "by_kind": {kind: {...}}},
              "queue_wait_s": {...},
              "io": {<IoStats counters>, buffer_hit_rate,
                     bucket_skip_rate},
              "plans": {strategy: completed count},
            }
        """
        with self._lock:
            settled = (
                self.completed + self.failed + self.timed_out + self.cancelled
            )
            io = self._io
            return {
                "queries": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected": self.rejected,
                    "timed_out": self.timed_out,
                    "cancelled": self.cancelled,
                    "in_flight": self.submitted - settled,
                },
                "latency_s": {
                    "overall": self._latency.as_dict(),
                    "by_kind": {
                        kind: recorder.as_dict()
                        for kind, recorder in sorted(self._latency_by_kind.items())
                    },
                },
                "queue_wait_s": self._queue_wait.as_dict(),
                "io": {
                    **io.as_dict(),
                    "buffer_hit_rate": io.buffer_hit_rate,
                    "bucket_skip_rate": io.bucket_skip_rate,
                },
                "plans": dict(sorted(self._plans.items())),
            }
