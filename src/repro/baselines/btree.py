"""A paged B⁺-tree — the traditional-index baseline.

The paper's argument against B⁺-trees for Query 1 is twofold:

* **space / build time** — "a B+ tree on shipdate (though of no use for
  Query 1) consumes about 230 MB.  Its creation time is far beyond the
  15 minutes needed to create all SMAs";
* **uselessness at low selectivity** — with 95–97 % of tuples
  qualifying, a non-clustered index merely turns sequential I/O into
  random I/O.

This implementation is a real bulk-loaded B⁺-tree with 4 KB-page
geometry: leaves hold (key, rid) entries, internal nodes hold separator
keys and child numbers, and every node access is charged to the buffer
pool under a virtual file id.  Range scans return rids; fetching the
base tuples through rids charges one (usually random) bucket access per
distinct bucket — which is exactly how the paper's pathology shows up
in the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.lang.predicate import CmpOp
from repro.storage.buffer import BufferPool
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.table import Table

#: rid encoding: bucket number in the high 32 bits, slot in the low 32.
_RID_SHIFT = 32


def make_rid(bucket_no: int, slot: int) -> int:
    return (bucket_no << _RID_SHIFT) | slot


def rid_bucket(rid: int) -> int:
    return rid >> _RID_SHIFT


def rid_slot(rid: int) -> int:
    return rid & 0xFFFFFFFF


@dataclass
class _Level:
    """One level of the tree: per-node key arrays (and payloads)."""

    keys: list[np.ndarray]           # node -> sorted key array
    payloads: list[np.ndarray]       # leaf: rids; internal: child node ids


class BPlusTree:
    """Bulk-loaded, read-only B⁺-tree with exact page accounting."""

    def __init__(
        self,
        name: str,
        key_width: int,
        pool: BufferPool,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        rid_width: int = 8,
        header_bytes: int = 24,
        entry_overhead: int = 8,
    ):
        self.name = name
        self.pool = pool
        self.page_size = page_size
        self.key_width = key_width
        self.rid_width = rid_width
        self.header_bytes = header_bytes
        # Slot pointer + alignment per entry, as in slotted B+-tree pages
        # of the era (this is what pushes a shipdate tree toward the
        # paper's 230 MB rather than a theoretical 12-bytes-per-entry).
        self.entry_overhead = entry_overhead
        self.leaf_capacity = (page_size - header_bytes) // (
            key_width + rid_width + entry_overhead
        )
        # Internal: k separators + k+1 children (children as 4-byte page nos).
        self.internal_capacity = (page_size - header_bytes) // (
            key_width + 4 + entry_overhead
        )
        if self.leaf_capacity < 2 or self.internal_capacity < 3:
            raise StorageError("page too small for B+-tree nodes")
        self._levels: list[_Level] = []  # level 0 = leaves
        self.num_entries = 0

    # ------------------------------------------------------------------
    # bulk load
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        table: Table,
        column: str,
        pool: BufferPool,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        fill_factor: float = 0.67,
    ) -> "BPlusTree":
        """Bulk load an index on *table.column*.

        Charges: one full table scan (pages + per-tuple build CPU), an
        external sort (read+write of all key/rid data), and one write
        per index page — the realistic creation bill the paper alludes
        to with "far beyond the 15 minutes".  The default 2/3 fill
        factor leaves the usual room for subsequent inserts.
        """
        dtype = table.schema.dtype_of(column)
        tree = cls(name, dtype.width, pool, page_size=page_size)
        stats = pool.stats

        keys_parts: list[np.ndarray] = []
        rids_parts: list[np.ndarray] = []
        for bucket_no, records in table.iter_buckets():
            stats.tuples_built += len(records)
            keys_parts.append(records[column].copy())
            rids_parts.append(
                (np.int64(bucket_no) << _RID_SHIFT)
                | np.arange(len(records), dtype=np.int64)
            )
        if keys_parts:
            keys = np.concatenate(keys_parts)
            rids = np.concatenate(rids_parts)
        else:
            keys = np.zeros(0, dtype=table.schema.record_dtype[column])
            rids = np.zeros(0, dtype=np.int64)

        # External-sort accounting: one read + one write pass over the
        # (key, rid) run files.
        entry_bytes = (tree.key_width + tree.rid_width) * len(keys)
        sort_pages = (entry_bytes + page_size - 1) // page_size
        stats.page_writes += sort_pages
        stats.sequential_page_reads += sort_pages

        order = np.argsort(keys, kind="stable")
        tree._bulk_load(keys[order], rids[order], fill_factor)

        # Writing the finished index.
        stats.page_writes += tree.num_pages
        return tree

    def _bulk_load(
        self, keys: np.ndarray, rids: np.ndarray, fill_factor: float
    ) -> None:
        if not 0.1 <= fill_factor <= 1.0:
            raise StorageError(f"fill_factor must be in [0.1, 1], got {fill_factor}")
        self.num_entries = len(keys)
        per_leaf = max(2, int(self.leaf_capacity * fill_factor))
        leaf_keys = [keys[i : i + per_leaf] for i in range(0, max(len(keys), 1), per_leaf)]
        leaf_rids = [rids[i : i + per_leaf] for i in range(0, max(len(rids), 1), per_leaf)]
        self._levels = [_Level(leaf_keys, leaf_rids)]

        per_internal = max(3, int(self.internal_capacity * fill_factor))
        while len(self._levels[-1].keys) > 1:
            below = self._levels[-1]
            highs = np.array([node[-1] if len(node) else keys[:1][0] for node in below.keys])
            node_ids = np.arange(len(below.keys), dtype=np.int64)
            new_keys = [
                highs[i : i + per_internal]
                for i in range(0, len(highs), per_internal)
            ]
            new_children = [
                node_ids[i : i + per_internal]
                for i in range(0, len(node_ids), per_internal)
            ]
            self._levels.append(_Level(new_keys, new_children))

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self._levels)

    @property
    def num_pages(self) -> int:
        return sum(len(level.keys) for level in self._levels)

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.page_size

    def level_pages(self) -> list[int]:
        """Page count per level, leaves first."""
        return [len(level.keys) for level in self._levels]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _charge_node(self, level: int, node: int) -> None:
        # Page numbering: levels are laid out leaves-first, so page ids
        # are unique per (level, node).
        offset = sum(len(lv.keys) for lv in self._levels[:level])
        self.pool.read_page((self.name, "btree"), offset + node, lambda: b"")

    def _descend_to_leaf(self, key: object) -> int:
        """Walk root→leaf for the first leaf that may contain *key*."""
        node = 0
        for level in range(self.height - 1, 0, -1):
            self._charge_node(level, node)
            level_data = self._levels[level]
            position = int(np.searchsorted(level_data.keys[node], key, side="left"))
            position = min(position, len(level_data.payloads[node]) - 1)
            node = int(level_data.payloads[node][position])
        return node

    def search_range(
        self, low: object | None, high: object | None, *,
        low_inclusive: bool = True, high_inclusive: bool = True,
    ) -> np.ndarray:
        """All rids with keys in the given range (None = unbounded)."""
        if self.num_entries == 0:
            return np.zeros(0, dtype=np.int64)
        leaves = self._levels[0]
        start_leaf = 0 if low is None else self._descend_to_leaf(low)
        results: list[np.ndarray] = []
        for leaf in range(start_leaf, len(leaves.keys)):
            self._charge_node(0, leaf)
            keys = leaves.keys[leaf]
            rids = leaves.payloads[leaf]
            mask = np.ones(len(keys), dtype=bool)
            if low is not None:
                mask &= (keys >= low) if low_inclusive else (keys > low)
            if high is not None:
                mask &= (keys <= high) if high_inclusive else (keys < high)
            results.append(rids[mask])
            if high is not None and len(keys) and keys[-1] > high:
                break
        return np.concatenate(results) if results else np.zeros(0, dtype=np.int64)

    def search_eq(self, key: object) -> np.ndarray:
        """All rids with exactly *key*."""
        return self.search_range(key, key)

    def search_cmp(self, op: CmpOp, constant: object) -> np.ndarray:
        """rids satisfying ``key op constant``."""
        if op is CmpOp.EQ:
            return self.search_eq(constant)
        if op is CmpOp.LE:
            return self.search_range(None, constant)
        if op is CmpOp.LT:
            return self.search_range(None, constant, high_inclusive=False)
        if op is CmpOp.GE:
            return self.search_range(constant, None)
        if op is CmpOp.GT:
            return self.search_range(constant, None, low_inclusive=False)
        raise StorageError(f"B+-tree cannot serve operator {op.value!r}")

    # ------------------------------------------------------------------
    # tuple fetch through rids — where the pathology lives
    # ------------------------------------------------------------------

    def fetch(self, table: Table, rids: np.ndarray) -> np.ndarray:
        """Fetch base tuples for *rids* in rid order.

        Every distinct bucket is one bucket access; because rid order
        follows *key* order, not physical order, accesses on unclustered
        data are scattered — the buffer pool classifies them as
        random/skip reads and the simulated clock explodes, exactly the
        paper's "the only effect of using an index is to turn sequential
        I/O into random I/O".
        """
        if len(rids) == 0:
            return table.schema.empty_batch()
        stats = table.heap.pool.stats
        pieces: list[np.ndarray] = []
        buckets = rids >> _RID_SHIFT
        slots = rids & 0xFFFFFFFF
        boundaries = np.flatnonzero(np.diff(buckets)) + 1
        start = 0
        for end in list(boundaries) + [len(rids)]:
            bucket_no = int(buckets[start])
            records = table.read_bucket(bucket_no)
            stats.buckets_fetched += 1
            chosen = slots[start:end]
            stats.tuples_scanned += len(chosen)
            pieces.append(records[chosen])
            start = end
        return np.concatenate(pieces)
