"""Bitmap indexes — the other index family the paper's intro cites [15].

A bitmap index on a low-cardinality column stores, per distinct value,
one bit per tuple in physical order.  Equality and set predicates
become bitwise operations; counts are popcounts that never touch the
relation.  The structural comparison with SMAs:

* a count SMA grouped by the column stores one 4-byte count per
  (bucket, value) — with 32-tuple buckets that is the *same* 1 bit per
  tuple per value a bitmap costs, but pre-aggregated: counting needs no
  popcount pass, and sum SMAs answer SUM queries bitmaps cannot;
* bitmaps answer *which tuples* exactly (position-level), SMAs only
  which *buckets* might — for point lookups bitmaps win, for
  aggregation SMAs do.

This implementation packs bits with numpy, supports equality /
membership / range predicates over the value dictionary, popcount-based
counting, and position extraction with the usual page-charging through
the buffer pool.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import StorageError
from repro.lang.predicate import CmpOp
from repro.storage.buffer import BufferPool
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.table import Table


class BitmapIndex:
    """One packed bitmap per distinct value of a low-cardinality column."""

    def __init__(
        self,
        path: str,
        column: str,
        values: list,
        bitmaps: np.ndarray,  # shape (num_values, ceil(n/8)) uint8
        num_tuples: int,
        pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.path = path
        self.column = column
        self.values = values
        self._bitmaps = bitmaps
        self.num_tuples = num_tuples
        self.pool = pool
        self.page_size = page_size
        self.file_id = os.path.abspath(path)

    @classmethod
    def build(
        cls,
        table: Table,
        column: str,
        path: str,
        *,
        max_cardinality: int = 256,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "BitmapIndex":
        """One scan over the table; refuses high-cardinality columns
        (that is the point of bitmap indexes)."""
        table.schema.column(column)
        stats = table.heap.pool.stats
        chunks: list[np.ndarray] = []
        for _, records in table.iter_buckets():
            stats.tuples_built += len(records)
            chunks.append(records[column].copy())
        column_values = (
            np.concatenate(chunks)
            if chunks
            else np.zeros(0, dtype=table.schema.record_dtype[column])
        )
        distinct = np.unique(column_values)
        if len(distinct) > max_cardinality:
            raise StorageError(
                f"column {column!r} has {len(distinct)} distinct values; "
                f"bitmap indexes cap at {max_cardinality}"
            )
        n = len(column_values)
        bitmaps = np.zeros(
            (max(len(distinct), 1), (n + 7) // 8), dtype=np.uint8
        )
        for i, value in enumerate(distinct):
            bitmaps[i] = np.packbits(column_values == value)
        index = cls(
            path, column, list(distinct), bitmaps, n, table.heap.pool, page_size
        )
        with open(path, "wb") as f:
            f.write(bitmaps.tobytes())
        stats.page_writes += index.num_pages
        return index

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return len(self.values)

    @property
    def size_bytes(self) -> int:
        return int(self._bitmaps.size)

    @property
    def num_pages(self) -> int:
        if self.size_bytes == 0:
            return 0
        return (self.size_bytes + self.page_size - 1) // self.page_size

    def _pages_of_value(self, index: int) -> tuple[int, int]:
        row_bytes = self._bitmaps.shape[1]
        first = index * row_bytes // self.page_size
        last = (index * row_bytes + max(row_bytes - 1, 0)) // self.page_size
        return first, last

    def _charge_value(self, index: int) -> None:
        first, last = self._pages_of_value(index)
        for page_no in range(first, last + 1):
            self.pool.read_page(self.file_id, page_no, lambda: b"")

    # ------------------------------------------------------------------
    # predicate evaluation
    # ------------------------------------------------------------------

    def _matching_value_indices(self, op: CmpOp, constant: object) -> list[int]:
        chosen = []
        for i, value in enumerate(self.values):
            if op is CmpOp.EQ:
                keep = value == constant
            elif op is CmpOp.NE:
                keep = value != constant
            elif op is CmpOp.LT:
                keep = value < constant
            elif op is CmpOp.LE:
                keep = value <= constant
            elif op is CmpOp.GT:
                keep = value > constant
            elif op is CmpOp.GE:
                keep = value >= constant
            else:  # pragma: no cover - CmpOp is exhaustive
                raise StorageError(f"unknown operator {op}")
            if keep:
                chosen.append(i)
        return chosen

    def bitmap_for(self, op: CmpOp, constant: object) -> np.ndarray:
        """Packed result bitmap for ``column op constant`` (charged)."""
        result = np.zeros(self._bitmaps.shape[1], dtype=np.uint8)
        for i in self._matching_value_indices(op, constant):
            self._charge_value(i)
            result |= self._bitmaps[i]
        return result

    def count(self, op: CmpOp, constant: object) -> int:
        """Popcount the result bitmap — no relation access at all."""
        bitmap = self.bitmap_for(op, constant)
        total = int(np.unpackbits(bitmap)[: self.num_tuples].sum())
        return total

    def positions(self, op: CmpOp, constant: object) -> np.ndarray:
        """Global tuple positions satisfying the predicate."""
        bitmap = self.bitmap_for(op, constant)
        bits = np.unpackbits(bitmap)[: self.num_tuples]
        return np.flatnonzero(bits)

    def delete_files(self) -> None:
        self.pool.invalidate(self.file_id)
        if os.path.exists(self.path):
            os.remove(self.path)
