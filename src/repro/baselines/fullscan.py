"""The sequential-scan baseline as a standalone helper.

Query-level scan baselines run through the planner (``mode="scan"``);
this module provides the raw primitive for experiments that measure a
scan without any query machinery around it.
"""

from __future__ import annotations

import numpy as np

from repro.lang.predicate import Predicate
from repro.storage.table import Table


def scan_count(table: Table, predicate: Predicate) -> int:
    """Count qualifying tuples with one full sequential scan."""
    bound = predicate.bind(table.schema)
    stats = table.heap.pool.stats
    count = 0
    for _, records in table.iter_buckets():
        stats.tuples_scanned += len(records)
        stats.buckets_fetched += 1
        count += int(bound.evaluate(records).sum())
    return count


def scan_collect(table: Table, predicate: Predicate) -> np.ndarray:
    """Materialize qualifying tuples with one full sequential scan."""
    bound = predicate.bind(table.schema)
    stats = table.heap.pool.stats
    pieces: list[np.ndarray] = []
    for _, records in table.iter_buckets():
        stats.tuples_scanned += len(records)
        stats.buckets_fetched += 1
        mask = bound.evaluate(records)
        if mask.any():
            pieces.append(records[mask])
    if not pieces:
        return table.schema.empty_batch()
    return np.concatenate(pieces)
