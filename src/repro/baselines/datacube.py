"""Materialized data cubes — the structure SMAs are an alternative to.

Two pieces:

* the **closed-form space model** the paper uses in Section 2.4
  (following [5, 18]): a cube over dimensions with cardinalities
  ``c1..cd`` and an entry of ``w`` bytes occupies ``c1·…·cd · w`` bytes.
  The paper's numbers — 479.25 KB, 1 196.25 MB, 2 985.95 GB for one,
  two and three date dimensions (each of 2 556 days) times the 4
  returnflag/linestatus combinations times a 48-byte entry — fall
  straight out of :func:`cube_bytes`;
* a real (dense-array) :class:`DataCube` implementation so the space
  model can be validated against a materialized instance at small
  cardinality, and so cube *inflexibility* can be demonstrated: a query
  whose selection attribute is not among the cube's dimensions simply
  cannot be answered (``CubeMissError``).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.aggregates import AggregateKind
from repro.core.grouping import bucket_groups
from repro.errors import ReproError
from repro.query.query import OutputAggregate
from repro.storage.table import Table


class CubeMissError(ReproError):
    """The cube cannot answer this query (missing dimension/aggregate)."""


def cube_cells(dimension_cardinalities: list[int]) -> int:
    """Number of cells of a complete data cube over these dimensions."""
    cells = 1
    for cardinality in dimension_cardinalities:
        if cardinality <= 0:
            raise ReproError(f"cardinality must be positive, got {cardinality}")
        cells *= cardinality
    return cells


def cube_bytes(dimension_cardinalities: list[int], entry_bytes: int = 48) -> int:
    """Paper-style cube size: cells × entry width.

    Query 1 needs 6 aggregates of 8 bytes → 48-byte entries, the
    default.
    """
    return cube_cells(dimension_cardinalities) * entry_bytes


@dataclass
class CubeSpaceReport:
    """One line of the paper's cube-vs-SMA space comparison."""

    dimensions: list[int]
    entry_bytes: int
    total_bytes: int

    @property
    def human(self) -> str:
        size = float(self.total_bytes)
        for unit in ("B", "KB", "MB", "GB", "TB"):
            if size < 1024 or unit == "TB":
                return f"{size:.2f} {unit}"
            size /= 1024
        raise AssertionError  # pragma: no cover


def paper_cube_comparison(
    date_cardinality: int = 2556,
    flag_combinations: int = 4,
    entry_bytes: int = 48,
    max_dates: int = 3,
) -> list[CubeSpaceReport]:
    """The Section 2.4 sequence: cubes with 1, 2, 3 date dimensions."""
    reports = []
    for num_dates in range(1, max_dates + 1):
        dims = [date_cardinality] * num_dates + [flag_combinations]
        reports.append(
            CubeSpaceReport(dims, entry_bytes, cube_bytes(dims, entry_bytes))
        )
    return reports


class DataCube:
    """A dense materialized data cube over explicit dimension columns.

    Supports the cube's one query shape: group-by over (a subset of) the
    dimensions with the materialized aggregates, optionally sliced by
    exact dimension values.  Anything else raises :class:`CubeMissError`
    — which is precisely the paper's flexibility argument.
    """

    def __init__(
        self,
        dimensions: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
        entry_bytes: int | None = None,
    ):
        if not dimensions:
            raise ReproError("a data cube needs at least one dimension")
        for aggregate in aggregates:
            if aggregate.spec.kind is AggregateKind.AVG:
                raise ReproError(
                    "materialize sum and count; avg derives at query time"
                )
        self.dimensions = dimensions
        self.aggregates = aggregates
        self.entry_bytes = (
            entry_bytes if entry_bytes is not None else 8 * len(aggregates)
        )
        self._cells: dict[tuple, list] = {}
        self._dimension_values: list[set] = [set() for _ in dimensions]

    @classmethod
    def build(
        cls,
        table: Table,
        dimensions: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
    ) -> "DataCube":
        """One scan of the table materializes the finest grouping."""
        cube = cls(dimensions, aggregates)
        stats = table.heap.pool.stats
        schema = table.schema
        for _, records in table.iter_buckets():
            stats.tuples_built += len(records)
            keys, inverse = bucket_groups(records, dimensions, schema)
            argument_values = [
                None if a.spec.argument is None else a.spec.argument.evaluate(records)
                for a in aggregates
            ]
            for j, key in enumerate(keys):
                mask = inverse == j
                cell = cube._cell(key)
                for i, aggregate in enumerate(aggregates):
                    kind = aggregate.spec.kind
                    if kind is AggregateKind.COUNT:
                        cell[i] += int(mask.sum())
                        continue
                    values = argument_values[i][mask]
                    if kind is AggregateKind.SUM:
                        cell[i] += values.sum()
                    elif kind is AggregateKind.MIN:
                        low = values.min()
                        cell[i] = low if cell[i] is None else min(cell[i], low)
                    elif kind is AggregateKind.MAX:
                        high = values.max()
                        cell[i] = high if cell[i] is None else max(cell[i], high)
        return cube

    def _cell(self, key: tuple) -> list:
        cell = self._cells.get(key)
        if cell is None:
            cell = [
                0 if a.spec.kind in (AggregateKind.SUM, AggregateKind.COUNT) else None
                for a in self.aggregates
            ]
            self._cells[key] = cell
            for position, part in enumerate(key):
                self._dimension_values[position].add(part)
        return cell

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------

    @property
    def populated_cells(self) -> int:
        return len(self._cells)

    @property
    def allocated_cells(self) -> int:
        """Complete-cube cell count: the product of the cardinalities."""
        return cube_cells([max(len(v), 1) for v in self._dimension_values])

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_cells * self.entry_bytes

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def query(
        self,
        group_by: tuple[str, ...],
        *,
        slice_equals: dict[str, object] | None = None,
    ) -> tuple[list[str], list[tuple]]:
        """Roll up to *group_by*, optionally slicing dimensions by value.

        Raises :class:`CubeMissError` when a referenced column is not a
        cube dimension — e.g. an additional selection on a date the cube
        designer did not foresee (the paper's inflexibility argument).
        """
        slice_equals = slice_equals or {}
        for column in tuple(group_by) + tuple(slice_equals):
            if column not in self.dimensions:
                raise CubeMissError(
                    f"{column!r} is not a cube dimension {self.dimensions}; "
                    f"the cube cannot answer this query"
                )
        positions = [self.dimensions.index(name) for name in group_by]
        slice_positions = {
            self.dimensions.index(name): value
            for name, value in slice_equals.items()
        }
        rollup: dict[tuple, list] = {}
        for key, cell in self._cells.items():
            if any(key[p] != v for p, v in slice_positions.items()):
                continue
            out_key = tuple(key[p] for p in positions)
            target = rollup.get(out_key)
            if target is None:
                rollup[out_key] = list(cell)
                continue
            for i, aggregate in enumerate(self.aggregates):
                kind = aggregate.spec.kind
                if kind in (AggregateKind.SUM, AggregateKind.COUNT):
                    target[i] += cell[i]
                elif kind is AggregateKind.MIN:
                    target[i] = min(target[i], cell[i])
                elif kind is AggregateKind.MAX:
                    target[i] = max(target[i], cell[i])
        columns = list(group_by) + [a.name for a in self.aggregates]
        rows = [
            key + tuple(values)
            for key, values in sorted(rollup.items(), key=lambda kv: repr(kv[0]))
        ]
        return columns, rows

    def dimension_cardinalities(self) -> list[int]:
        return [len(values) for values in self._dimension_values]
