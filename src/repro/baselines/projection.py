"""Projection indexes [O'Neil & Quass, SIGMOD 1997].

"SMAs share the first property with the lately introduced projection
indexes.  In fact, SMAs can be seen as a generalization of projection
indexes.  In a projection index on a certain attribute, for all tuples
in the relation to index, the attribute value is stored sequentially in
a file."  (Section 1)

A projection index here is literally an SMA-file over buckets of one
tuple each — we build it as its own class for the baseline comparison:
its size is ``record_count × value_width`` (vs ``bucket_count ×
value_width`` for an SMA), and predicate evaluation scans every value
(vs grading bucket summaries).
"""

from __future__ import annotations

import os

import numpy as np

from repro.lang.predicate import ColumnConstCmp
from repro.storage.buffer import BufferPool
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.table import Table


class ProjectionIndex:
    """One column's values, stored sequentially in tuple order."""

    def __init__(
        self,
        path: str,
        column: str,
        values: np.ndarray,
        pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.path = path
        self.column = column
        self.pool = pool
        self.page_size = page_size
        self.file_id = os.path.abspath(path)
        self._values = values

    @classmethod
    def build(
        cls,
        table: Table,
        column: str,
        path: str,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "ProjectionIndex":
        """One pass over the table; charges scan + index writes."""
        table.schema.column(column)
        stats = table.heap.pool.stats
        parts: list[np.ndarray] = []
        for _, records in table.iter_buckets():
            stats.tuples_built += len(records)
            parts.append(records[column].copy())
        values = (
            np.concatenate(parts)
            if parts
            else np.zeros(0, dtype=table.schema.record_dtype[column])
        )
        index = cls(path, column, values, table.heap.pool, page_size)
        with open(path, "wb") as f:
            f.write(values.tobytes())
        stats.page_writes += index.num_pages
        return index

    @property
    def num_entries(self) -> int:
        return len(self._values)

    @property
    def value_width(self) -> int:
        return self._values.dtype.itemsize

    @property
    def size_bytes(self) -> int:
        return self.num_entries * self.value_width

    @property
    def num_pages(self) -> int:
        if self.size_bytes == 0:
            return 0
        return (self.size_bytes + self.page_size - 1) // self.page_size

    def values(self, *, charge: bool = True) -> np.ndarray:
        """Sequential scan of all values (charged page by page)."""
        if charge:
            for page_no in range(self.num_pages):
                self.pool.read_page(self.file_id, page_no, lambda: b"")
            self.pool.stats.tuples_scanned += self.num_entries
        view = self._values.view()
        view.flags.writeable = False
        return view

    def matching_positions(self, predicate: ColumnConstCmp) -> np.ndarray:
        """Tuple positions satisfying an atomic predicate on this column.

        This is the projection-index query pattern: scan the (narrow)
        index instead of the (wide) relation, then fetch only matching
        tuples.  Returns global tuple positions in physical order.
        """
        if predicate.column != self.column:
            raise ValueError(
                f"index on {self.column!r} cannot serve {predicate.column!r}"
            )
        mask = predicate.evaluate(
            np.rec.fromarrays([self.values()], names=[self.column])
        )
        return np.flatnonzero(mask)

    def delete_files(self) -> None:
        self.pool.invalidate(self.file_id)
        if os.path.exists(self.path):
            os.remove(self.path)
