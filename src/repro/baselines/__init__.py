"""Baselines the paper compares SMAs against: B⁺-tree, projection index,
materialized data cube, and the plain sequential scan."""

from repro.baselines.bitmap import BitmapIndex
from repro.baselines.btree import BPlusTree, make_rid, rid_bucket, rid_slot
from repro.baselines.datacube import (
    CubeMissError,
    CubeSpaceReport,
    DataCube,
    cube_bytes,
    cube_cells,
    paper_cube_comparison,
)
from repro.baselines.fullscan import scan_collect, scan_count
from repro.baselines.projection import ProjectionIndex

__all__ = [
    "BPlusTree",
    "BitmapIndex",
    "CubeMissError",
    "CubeSpaceReport",
    "DataCube",
    "ProjectionIndex",
    "cube_bytes",
    "cube_cells",
    "make_rid",
    "paper_cube_comparison",
    "rid_bucket",
    "rid_slot",
    "scan_collect",
    "scan_count",
]
