"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """Invalid schema definition or schema/value mismatch."""


class StorageError(ReproError):
    """Heap-file, page, or buffer-pool level failure."""


class TransientIOError(StorageError):
    """A read failed in a way that is expected to succeed on retry.

    The buffer pool's single-flight leader retries these with bounded
    backoff (see :class:`~repro.storage.faults.RetryPolicy`); only after
    the retry budget is exhausted does the error propagate to queries.
    """


class ChecksumError(StorageError):
    """A page failed checksum verification on load — corruption detected.

    Carries ``path`` and ``page_no`` so callers (and ``repro verify``)
    can pinpoint the damaged page.
    """

    def __init__(self, message: str, path: str | None = None,
                 page_no: int | None = None):
        super().__init__(message)
        self.path = path
        self.page_no = page_no


class TornWriteError(StorageError):
    """A write was cut short, leaving a partially written page on disk.

    Raised by the fault injector to simulate a crash mid-write; the
    on-disk state is genuinely torn so recovery paths can be exercised.
    """

    def __init__(self, message: str, path: str | None = None,
                 page_no: int | None = None):
        super().__init__(message)
        self.path = path
        self.page_no = page_no


class SmaIntegrityError(StorageError):
    """An SMA-file failed integrity verification (checksum/truncation).

    SMA-files are derived, redundant data: the correct response is never
    a wrong answer but quarantine + heap fallback + rebuild.  Carries
    ``path`` so the planner can map the file back to its definition.
    """

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message)
        self.path = path


class CatalogError(ReproError):
    """Unknown or duplicate catalog object (table, SMA set, index)."""


class SmaDefinitionError(ReproError):
    """An SMA definition violates the paper's restrictions.

    The select clause of a ``define sma`` statement may contain only a
    single aggregate entry, the from clause a single relation, and no
    order specification is allowed (Section 2.1 of the paper).
    """


class SmaStateError(ReproError):
    """An SMA-file is out of sync with its base relation."""


class ParseError(ReproError):
    """SQL front-end failure: unexpected token or unsupported construct."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class PlanningError(ReproError):
    """The planner could not build a plan for the requested query."""


class ExecutionError(ReproError):
    """A physical operator failed during evaluation."""


class ServerError(ReproError):
    """Concurrent query service failure (admission, lifecycle, workers)."""


class ServerOverloadedError(ServerError):
    """The admission queue is full; the query was rejected, not queued.

    Raised synchronously by ``submit`` so callers can shed load or retry
    with backoff — the service never blocks or deadlocks on admission.
    """


class ServerShutdownError(ServerError):
    """A query was submitted to a service that has been shut down."""


class ShardError(ServerError):
    """Sharded serving tier failure (partitioning, wire protocol, workers)."""


class ShardUnavailableError(ShardError):
    """A shard worker could not be reached (after connection retries).

    A scatter-gathered query refuses to return a partial relation: if any
    shard is down the whole query fails with this typed error rather than
    silently dropping that shard's bucket range.
    """

    def __init__(self, message: str, shard_id: int | None = None):
        super().__init__(message)
        self.shard_id = shard_id


class ShardProtocolError(ShardError):
    """Malformed or truncated frame on the router <-> worker wire."""


class QueryCancelledError(ServerError):
    """A query was cancelled while queued or cooperatively while running.

    Running queries observe cancellation at their next page access — all
    I/O funnels through the buffer pool, which checks the query context's
    cancel event on every :meth:`~repro.storage.buffer.BufferPool.read_page`.
    """


class QueryTimeoutError(QueryCancelledError):
    """A query exceeded its deadline (queued or running)."""
