"""Observability: tracing, structured events, metrics exposition.

Three pieces, designed to never get in the query path's way:

* :mod:`repro.obs.trace` — span trees with cross-thread context
  propagation and exact per-span :class:`~repro.storage.stats.IoStats`
  deltas; disabled via the shared :data:`~repro.obs.trace.NO_TRACER`.
* :mod:`repro.obs.events` — bounded-queue JSONL event log; ``emit`` is
  ``put_nowait`` + drop counter, serialization happens on one writer
  thread.
* :mod:`repro.obs.exposition` — Prometheus text rendering of the
  metrics snapshot and the ``/metrics`` / ``/healthz`` / ``/snapshot``
  HTTP endpoint.
* :mod:`repro.obs.collect` — distributed-trace collection: graft span
  trees exported by shard workers and scan-pool processes into the
  router's trace (fresh ids, clock-skew-tolerant rebasing), reconcile
  leaf-span I/O against query totals, and build per-query resource
  ledgers.
"""

from repro.obs.collect import (
    ReconcileReport,
    build_ledger,
    graft_remote_trace,
    reconcile,
    span_from_wire,
)
from repro.obs.events import EventLog
from repro.obs.exposition import MetricsServer, render_prometheus
from repro.obs.trace import (
    NO_TRACER,
    NoopTracer,
    Span,
    Tracer,
    render_span_tree,
    resolve_tracer,
)

__all__ = [
    "EventLog",
    "MetricsServer",
    "NO_TRACER",
    "NoopTracer",
    "ReconcileReport",
    "Span",
    "Tracer",
    "build_ledger",
    "graft_remote_trace",
    "reconcile",
    "render_prometheus",
    "render_span_tree",
    "resolve_tracer",
    "span_from_wire",
]
