"""Prometheus-style exposition of service metrics + the HTTP endpoint.

:func:`render_prometheus` turns a
:meth:`~repro.server.metrics.MetricsRegistry.snapshot` dict into the
Prometheus text format (version 0.0.4): ``# HELP``/``# TYPE`` headers,
counters/gauges with escaped labels, and cumulative ``_bucket{le=...}``
histograms from the registry's fixed-bucket latency histograms.

:class:`MetricsServer` serves that text from a stdlib
``ThreadingHTTPServer`` on a daemon thread:

==============  ========================================================
``/metrics``    Prometheus text exposition
``/healthz``    liveness JSON (status, uptime)
``/snapshot``   the full snapshot dict as JSON
==============  ========================================================

Everything is read-only and cheap: each request takes one snapshot under
the registry lock; no request ever touches the query path.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["MetricsServer", "render_prometheus"]


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    """Render a sample value; integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class _Lines:
    """Accumulates exposition lines, writing HELP/TYPE once per metric."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._described: set[str] = set()

    def sample(
        self,
        name: str,
        value: float,
        *,
        labels: dict[str, object] | None = None,
        help_text: str = "",
        kind: str = "gauge",
        sample_suffix: str = "",
    ) -> None:
        if name not in self._described:
            self._described.add(name)
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")
        label_str = ""
        if labels:
            inner = ",".join(
                f'{key}="{_escape_label(value)}"' for key, value in labels.items()
            )
            label_str = "{" + inner + "}"
        self.lines.append(f"{name}{sample_suffix}{label_str} {_fmt(value)}")

    def histogram(
        self,
        name: str,
        hist: dict,
        *,
        labels: dict[str, object] | None = None,
        help_text: str = "",
    ) -> None:
        """One Prometheus histogram from a FixedHistogram.as_dict()."""
        if name not in self._described:
            self._described.add(name)
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} histogram")
        base = dict(labels or {})
        for bucket in hist.get("buckets", ()):
            le = bucket["le"]
            bucket_labels = dict(base)
            bucket_labels["le"] = le if isinstance(le, str) else _fmt(le)
            inner = ",".join(
                f'{key}="{_escape_label(value)}"'
                for key, value in bucket_labels.items()
            )
            self.lines.append(f"{name}_bucket{{{inner}}} {_fmt(bucket['count'])}")
        label_str = ""
        if base:
            inner = ",".join(
                f'{key}="{_escape_label(value)}"' for key, value in base.items()
            )
            label_str = "{" + inner + "}"
        self.lines.append(f"{name}_sum{label_str} {_fmt(hist.get('sum', 0.0))}")
        self.lines.append(f"{name}_count{label_str} {_fmt(hist.get('count', 0))}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: dict, *, namespace: str = "repro") -> str:
    """Render one metrics snapshot as Prometheus text format 0.0.4.

    *snapshot* is the :meth:`MetricsRegistry.snapshot` dict, optionally
    augmented by the caller with an ``"events"`` sub-dict (the event
    log's stats) — the service's ``/metrics`` endpoint does this.
    """
    out = _Lines()
    ns = namespace

    service = snapshot.get("service", {})
    if service:
        out.sample(
            f"{ns}_uptime_seconds",
            service.get("uptime_s", 0.0),
            help_text="Seconds since the metrics registry was created.",
        )
        out.sample(
            f"{ns}_start_time_seconds",
            service.get("started_at", 0.0),
            help_text="Unix time the service started.",
        )

    queries = snapshot.get("queries", {})
    for outcome in (
        "submitted", "completed", "failed", "rejected", "timed_out", "cancelled",
    ):
        if outcome in queries:
            out.sample(
                f"{ns}_queries_total",
                queries[outcome],
                labels={"outcome": outcome},
                help_text="Queries by admission/execution outcome.",
                kind="counter",
            )
    if "in_flight" in queries:
        out.sample(
            f"{ns}_queries_in_flight",
            queries["in_flight"],
            help_text="Queries admitted but not yet settled.",
        )
    for kind, outcomes in sorted(queries.get("by_kind", {}).items()):
        for outcome, count in sorted(outcomes.items()):
            out.sample(
                f"{ns}_queries_by_kind_total",
                count,
                labels={"kind": kind, "outcome": outcome},
                help_text="Per-workload-kind queries by outcome.",
                kind="counter",
            )

    for metric, key, help_text in (
        ("query_latency_seconds", "latency_hist", "Query latency histogram."),
        ("queue_wait_seconds", "queue_wait_hist", "Admission queue wait histogram."),
    ):
        hist = snapshot.get(key)
        if hist:
            out.histogram(f"{ns}_{metric}", hist, help_text=help_text)

    io = snapshot.get("io", {})
    if io:
        for klass in ("sequential", "skip", "random"):
            out.sample(
                f"{ns}_io_page_reads_total",
                io.get(f"{klass}_page_reads", 0),
                labels={"class": klass},
                help_text="Physical page reads by access class.",
                kind="counter",
            )
        for file_kind in ("sma", "heap"):
            out.sample(
                f"{ns}_io_file_page_reads_total",
                io.get(f"{file_kind}_page_reads", 0),
                labels={"file": file_kind},
                help_text="Physical page reads split by file kind "
                "(SMA-file vs relation heap).",
                kind="counter",
            )
        physical = io.get("page_reads", 0)
        out.sample(
            f"{ns}_io_sma_page_fraction",
            (io.get("sma_page_reads", 0) / physical) if physical else 0.0,
            help_text="Fraction of physical reads spent on SMA-files "
            "(the paper's SMA pages vs relation pages ratio).",
        )
        out.sample(
            f"{ns}_io_buffer_hits_total",
            io.get("buffer_hits", 0),
            help_text="Logical page reads served from the buffer pool.",
            kind="counter",
        )
        out.sample(
            f"{ns}_io_buffer_hit_rate",
            io.get("buffer_hit_rate", 0.0),
            help_text="Buffer hits over logical page accesses.",
        )
        out.sample(
            f"{ns}_io_page_writes_total",
            io.get("page_writes", 0),
            help_text="Page writes.",
            kind="counter",
        )
        for action in ("fetched", "skipped"):
            out.sample(
                f"{ns}_io_buckets_total",
                io.get(f"buckets_{action}", 0),
                labels={"action": action},
                help_text="Buckets fetched vs skipped by SMA grading.",
                kind="counter",
            )
        out.sample(
            f"{ns}_io_bucket_skip_rate",
            io.get("bucket_skip_rate", 0.0),
            help_text="Buckets skipped over buckets examined.",
        )
        out.sample(
            f"{ns}_io_tuples_scanned_total",
            io.get("tuples_scanned", 0),
            help_text="Tuples inspected by scans.",
            kind="counter",
        )
        out.sample(
            f"{ns}_io_sma_entries_read_total",
            io.get("sma_entries_read", 0),
            help_text="SMA entries read (grading + roll-up).",
            kind="counter",
        )
        out.sample(
            f"{ns}_io_read_retries_total",
            io.get("read_retries", 0),
            help_text="Transient read faults retried inside the "
            "single-flight loader.",
            kind="counter",
        )

    for strategy, count in sorted(snapshot.get("plans", {}).items()):
        out.sample(
            f"{ns}_plans_total",
            count,
            labels={"strategy": strategy},
            help_text="Completed queries by chosen plan strategy.",
            kind="counter",
        )

    for table, grading in sorted(snapshot.get("grading", {}).items()):
        for grade in ("qualifying", "ambivalent", "disqualifying"):
            out.sample(
                f"{ns}_grading_fraction",
                grading.get(f"mean_{grade}", 0.0),
                labels={"table": table, "grade": grade},
                help_text="Mean grading fraction over completed SMA-graded "
                "queries (the paper's Figure 5 axis; break-even near "
                "0.25 ambivalent).",
            )
            out.sample(
                f"{ns}_grading_last_fraction",
                grading.get(f"last_{grade}", 0.0),
                labels={"table": table, "grade": grade},
                help_text="Grading fraction of the most recent SMA-graded query.",
            )
        out.sample(
            f"{ns}_grading_queries_total",
            grading.get("queries", 0),
            labels={"table": table},
            help_text="SMA-graded queries per table.",
            kind="counter",
        )
        out.sample(
            f"{ns}_ambivalent_warnings_total",
            grading.get("warnings", 0),
            labels={"table": table},
            help_text="Times the ambivalent fraction crossed the "
            "configured break-even threshold.",
            kind="counter",
        )

    integrity = snapshot.get("integrity")
    if integrity is not None:
        out.sample(
            f"{ns}_sma_quarantined_total",
            integrity.get("sma_quarantined", 0),
            help_text="SMA definitions quarantined after failed integrity "
            "checks (queries fell back to heap scans).",
            kind="counter",
        )
        out.sample(
            f"{ns}_sma_repaired_total",
            integrity.get("sma_repaired", 0),
            help_text="Quarantined SMA definitions rebuilt from the heap.",
            kind="counter",
        )
        for table, count in sorted(integrity.get("by_table", {}).items()):
            out.sample(
                f"{ns}_sma_quarantined_by_table_total",
                count,
                labels={"table": table},
                help_text="SMA quarantines per table.",
                kind="counter",
            )

    shard = snapshot.get("shard")
    if shard:
        fanout = shard.get("fanout", {})
        for counter, help_text in (
            ("scatter_queries", "Queries scattered across shard workers."),
            ("subqueries_sent", "Per-shard subqueries dispatched."),
            (
                "gather_merges",
                "Partial aggregation states merged at gather time.",
            ),
        ):
            out.sample(
                f"{ns}_shard_{counter}_total",
                fanout.get(counter, 0),
                help_text=help_text,
                kind="counter",
            )
        per_shard = shard.get("shards", {})
        for shard_id in sorted(per_shard, key=lambda key: int(key)):
            info = per_shard[shard_id]
            labels = {"shard": shard_id}
            out.sample(
                f"{ns}_shard_up",
                1 if info.get("up") else 0,
                labels=labels,
                help_text="Shard liveness (1 when the last contact "
                "succeeded).",
            )
            out.sample(
                f"{ns}_shard_requests_total",
                info.get("requests", 0),
                labels=labels,
                help_text="Subqueries sent to this shard.",
                kind="counter",
            )
            out.sample(
                f"{ns}_shard_failures_total",
                info.get("failures", 0),
                labels=labels,
                help_text="Subqueries that failed on this shard.",
                kind="counter",
            )
            latency = info.get("latency_s") or {}
            if latency.get("count"):
                for stat in ("mean_s", "p95_s", "max_s"):
                    if stat in latency:
                        out.sample(
                            f"{ns}_shard_latency_seconds",
                            latency[stat],
                            labels={**labels, "stat": stat[:-2]},
                            help_text="Per-shard subquery latency summary.",
                        )

    scan = snapshot.get("scan")
    if scan:
        out.sample(
            f"{ns}_scan_backend",
            1,
            labels={"backend": str(scan.get("backend", "thread"))},
            help_text="Configured scan backend (info metric; value is "
            "always 1).",
        )
        out.sample(
            f"{ns}_scan_workers",
            scan.get("scan_workers", 1),
            help_text="Morsel-scan workers per running query.",
        )
        pool = scan.get("pool")
        if pool:
            out.sample(
                f"{ns}_scan_pool_processes",
                pool.get("workers_spawned", 0),
                help_text="Worker processes spawned by the scan "
                "process pools.",
            )
            out.sample(
                f"{ns}_scan_pool_tasks_total",
                pool.get("tasks_dispatched", 0),
                help_text="Morsel tasks completed by process workers.",
                kind="counter",
            )
            out.sample(
                f"{ns}_scan_pool_fallbacks_total",
                pool.get("fallbacks", 0),
                help_text="Process-backend dispatches that fell back to "
                "threads after a worker crash.",
                kind="counter",
            )

    ingest = snapshot.get("ingest")
    if ingest:
        for table, by_op in sorted(ingest.get("rows_total", {}).items()):
            for op, rows in sorted(by_op.items()):
                out.sample(
                    f"{ns}_ingest_rows_total",
                    rows,
                    labels={"table": table, "op": op},
                    help_text="Rows applied by DML batches, per table "
                    "and operation.",
                    kind="counter",
                )
        for table, epoch in sorted(ingest.get("epochs", {}).items()):
            out.sample(
                f"{ns}_ingest_epoch",
                epoch,
                labels={"table": table},
                help_text="Per-table ingest epoch (bumps once per "
                "applied DML batch; readers pin it at admission).",
            )
        out.sample(
            f"{ns}_ingest_batches_total",
            ingest.get("batches", 0),
            help_text="DML batches applied through the write path.",
            kind="counter",
        )
        out.sample(
            f"{ns}_ingest_write_queue_depth",
            ingest.get("write_queue_depth", 0),
            help_text="DML jobs admitted but not yet settled.",
        )
        out.sample(
            f"{ns}_ingest_write_queue_peak",
            ingest.get("write_queue_peak", 0),
            help_text="High-water mark of the write queue depth.",
        )
        for action, key in (
            ("replayed", "intents_replayed"),
            ("rolled_back", "intents_rolled_back"),
        ):
            out.sample(
                f"{ns}_ingest_intents_resolved_total",
                ingest.get(key, 0),
                labels={"action": action},
                help_text="Write-ahead intents resolved during repair.",
                kind="counter",
            )

    ledger = snapshot.get("ledger")
    if ledger and ledger.get("queries"):
        out.sample(
            f"{ns}_query_ledger_queries_total",
            ledger.get("queries", 0),
            help_text="Traced queries folded into the resource ledger.",
            kind="counter",
        )
        out.sample(
            f"{ns}_query_ledger_queue_wait_seconds_total",
            ledger.get("queue_wait_s", 0.0),
            help_text="Summed admission queue wait across ledgered "
            "queries.",
            kind="counter",
        )
        out.sample(
            f"{ns}_query_ledger_fan_out_total",
            ledger.get("fan_out", 0),
            help_text="Shard subqueries scattered by ledgered queries.",
            kind="counter",
        )
        for kind, seconds in sorted(ledger.get("span_seconds", {}).items()):
            out.sample(
                f"{ns}_query_ledger_span_seconds_total",
                seconds,
                labels={"kind": kind},
                help_text="Wall seconds attributed to each span kind "
                "across ledgered queries.",
                kind="counter",
            )
        for table, counters in sorted(ledger.get("tables", {}).items()):
            for file_kind in ("sma", "heap"):
                out.sample(
                    f"{ns}_query_ledger_page_reads_total",
                    counters.get(f"{file_kind}_page_reads", 0),
                    labels={"table": table, "file": file_kind},
                    help_text="Per-table physical page reads attributed "
                    "from merged span trees, split by file kind.",
                    kind="counter",
                )
            out.sample(
                f"{ns}_query_ledger_buffer_hits_total",
                counters.get("buffer_hits", 0),
                labels={"table": table},
                help_text="Per-table buffer-pool hits attributed from "
                "merged span trees.",
                kind="counter",
            )
            out.sample(
                f"{ns}_query_ledger_tuples_scanned_total",
                counters.get("tuples_scanned", 0),
                labels={"table": table},
                help_text="Per-table tuples scanned attributed from "
                "merged span trees.",
                kind="counter",
            )

    cache = snapshot.get("result_cache")
    if cache:
        for outcome, key in (
            ("hit", "hits"),
            ("flight_hit", "flight_hits"),
            ("miss", "misses"),
        ):
            out.sample(
                f"{ns}_result_cache_lookups_total",
                cache.get(key, 0),
                labels={"outcome": outcome},
                help_text="Result-cache lookups by outcome (flight_hit = "
                "served by a concurrent single-flight leader).",
                kind="counter",
            )
        out.sample(
            f"{ns}_result_cache_stores_total",
            cache.get("stores", 0),
            help_text="Finalized results published into the cache.",
            kind="counter",
        )
        out.sample(
            f"{ns}_result_cache_evictions_total",
            cache.get("evictions", 0),
            help_text="Entries dropped by the LRU capacity bound.",
            kind="counter",
        )
        out.sample(
            f"{ns}_result_cache_invalidations_total",
            cache.get("invalidations", 0),
            help_text="Entries evicted by quarantine or go_cold().",
            kind="counter",
        )
        out.sample(
            f"{ns}_result_cache_entries",
            cache.get("entries", 0),
            help_text="Entries currently resident.",
        )
        out.sample(
            f"{ns}_result_cache_hit_rate",
            cache.get("hit_rate", 0.0),
            help_text="Fraction of lookups served without execution.",
        )

    shared = snapshot.get("shared_scan")
    if shared:
        for role, key in (
            ("lead", "leads"),
            ("attach", "attaches"),
            ("detach", "detaches"),
        ):
            out.sample(
                f"{ns}_shared_scan_consumers_total",
                shared.get(key, 0),
                labels={"role": role},
                help_text="Shared-scan consumers by role (detach = fell "
                "back to a solo execution).",
                kind="counter",
            )
        out.sample(
            f"{ns}_shared_scan_fan_in_total",
            shared.get("fan_in_total", 0),
            help_text="Summed consumers over all led passes.",
            kind="counter",
        )
        out.sample(
            f"{ns}_shared_scan_fan_in_max",
            shared.get("fan_in_max", 0),
            help_text="Largest consumer count one pass served.",
        )
        out.sample(
            f"{ns}_shared_scan_pending_groups",
            shared.get("pending_groups", 0),
            help_text="Passes currently gathering consumers.",
        )

    events = snapshot.get("events", {})
    if events:
        out.sample(
            f"{ns}_events_written_total",
            events.get("written", 0),
            help_text="Events persisted by the JSONL writer.",
            kind="counter",
        )
        out.sample(
            f"{ns}_events_dropped_total",
            events.get("dropped", 0),
            help_text="Events dropped because the bounded queue was full.",
            kind="counter",
        )

    return out.render()


class MetricsServer:
    """Serves ``/metrics``, ``/healthz`` and ``/snapshot`` on a thread.

    Parameters
    ----------
    snapshot_fn:
        Zero-argument callable returning the current snapshot dict
        (typically ``service.observed_snapshot`` so event-log stats ride
        along).
    port:
        TCP port; 0 picks a free one (read :attr:`port` after start).
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], dict],
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        namespace: str = "repro",
    ):
        self._snapshot_fn = snapshot_fn
        self._namespace = namespace
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: object) -> None:  # silence stderr
                return None

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    server._route(self)
                except BrokenPipeError:  # pragma: no cover - client went away
                    pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._started = False

    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Start serving; logs the *bound* address (useful with port 0)."""
        if not self._started:
            self._started = True
            self._thread.start()
            logging.getLogger("repro.obs").info(
                "metrics server listening on %s", self.url
            )
        return self

    def close(self) -> None:
        if self._started:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(
                self._snapshot_fn(), namespace=self._namespace
            ).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/healthz":
            snapshot = self._snapshot_fn()
            body = json.dumps(
                {
                    "status": "ok",
                    "uptime_s": snapshot.get("service", {}).get("uptime_s"),
                    "in_flight": snapshot.get("queries", {}).get("in_flight"),
                },
                default=str,
            ).encode("utf-8")
            content_type = "application/json"
        elif path == "/snapshot":
            body = json.dumps(self._snapshot_fn(), default=str).encode("utf-8")
            content_type = "application/json"
        else:
            body = b'{"error": "not found"}'
            handler.send_response(404)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
            return
        handler.send_response(200)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
