"""Lightweight tracing: spans, context propagation, I/O-delta annotation.

A :class:`Tracer` produces :class:`Span` trees for individual queries:
admission, queue wait, planning (logical rewrite, per-set grading,
access-path costing) and execution (SMA roll-up, ambivalent-bucket
fetches, per-morsel scans, aggregate merge) each become one span.  The
design constraints, in order:

* **zero cost when disabled** — the module-level :data:`NO_TRACER` is a
  no-op tracer whose ``span()`` returns one shared, allocation-free
  context manager; instrumentation sites either call it unconditionally
  (per-phase sites, a few calls per query) or guard with the single
  ``tracer.enabled`` branch (per-morsel sites);
* **explicit cross-thread propagation** — the current span lives in a
  thread-local; code that fans work out to other threads captures
  ``tracer.current()`` once and passes it as ``parent=`` (the morsel
  dispatcher in :mod:`repro.query.parallel` does this for scan workers,
  :class:`~repro.server.service.QueryService` does it for executor
  workers via :meth:`Tracer.activate`);
* **exact I/O attribution** — a span opened with ``stats=window``
  snapshots the :class:`~repro.storage.stats.IoStats` window on entry
  and stores the delta on exit.  Instrumentation points are chosen so
  that the io-carrying spans of one query never nest and jointly cover
  every counter charge: the *leaf* deltas of a trace sum exactly to the
  query's total (`repro trace` prints the reconciliation).

Span timestamps use ``time.perf_counter()`` — one process-wide monotonic
clock, so spans started on different threads order correctly within a
trace.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Iterator

from repro.storage.stats import IoStats

__all__ = [
    "NO_TRACER",
    "NoopTracer",
    "Span",
    "Tracer",
    "render_span_tree",
    "resolve_tracer",
]


class Span:
    """One named, timed segment of a trace (a node of the span tree)."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "attrs",
        "io",
        "children",
        "thread_name",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = 0.0
        self.end_s: float | None = None
        self.attrs: dict[str, object] = {}
        #: the span's own IoStats delta (set only on io-carrying spans)
        self.io: IoStats | None = None
        #: child spans; appends are GIL-atomic, order is start order only
        #: after :meth:`sorted_children`
        self.children: list["Span"] = []
        self.thread_name = threading.current_thread().name

    # -- inspection ----------------------------------------------------

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def annotate(self, **attrs: object) -> "Span":
        """Attach key/value attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first in start order."""
        yield self
        for child in self.sorted_children():
            yield from child.walk()

    def sorted_children(self) -> list["Span"]:
        """Children ordered by start time (cross-thread appends race)."""
        return sorted(self.children, key=lambda s: (s.start_s, s.span_id))

    def io_spans(self) -> list["Span"]:
        """Every span in this subtree carrying an IoStats delta.

        By construction these never nest, so summing their deltas gives
        the exact I/O of the subtree (see :func:`io_total`).
        """
        return [span for span in self.walk() if span.io is not None]

    def io_total(self) -> IoStats:
        """Sum of all io-carrying descendant deltas (the subtree's I/O)."""
        total = IoStats()
        for span in self.io_spans():
            total.merge(span.io)
        return total

    def to_dict(self) -> dict:
        """JSON-friendly form (used by the event log's trace records)."""
        out: dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread_name,
        }
        if self.attrs:
            out["attrs"] = {key: _jsonable(value) for key, value in self.attrs.items()}
        if self.io is not None:
            out["io"] = self.io.as_dict()
        if self.children:
            out["children"] = [child.to_dict() for child in self.sorted_children()]
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_s * 1e3:.2f}ms)"
        )


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _SpanContext:
    """Context manager for one live span; restores the previous current."""

    __slots__ = ("_tracer", "_span", "_stats", "_before", "_previous")

    def __init__(self, tracer: "Tracer", span: Span, stats: IoStats | None):
        self._tracer = tracer
        self._span = span
        self._stats = stats
        self._before: IoStats | None = None
        self._previous: Span | None = None

    def __enter__(self) -> Span:
        self._previous = self._tracer.current()
        self._tracer._set_current(self._span)
        self._span.start_s = self._tracer.clock()
        if self._stats is not None:
            self._before = self._stats.snapshot()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        span.end_s = self._tracer.clock()
        if self._stats is not None and self._before is not None:
            span.io = self._stats.snapshot() - self._before
        self._tracer._set_current(self._previous)
        if span.parent_id is None:
            self._tracer._finish_trace(span)


class Tracer:
    """Produces span trees; finished root spans go to the sinks.

    Parameters
    ----------
    on_trace:
        Callables invoked with each finished *root* span (its whole tree
        is complete by then).  Sinks must not raise; exceptions are
        swallowed so tracing can never fail a query.
    keep:
        Number of finished traces retained in :attr:`traces` (a deque)
        for ad-hoc inspection — the ``repro trace`` CLI reads the last.
    """

    enabled = True

    def __init__(
        self,
        *,
        on_trace: list[Callable[[Span], None]] | None = None,
        keep: int = 16,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.clock = clock
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._sinks: list[Callable[[Span], None]] = list(on_trace or [])
        self.traces: deque[Span] = deque(maxlen=keep)
        self._finished = 0

    # -- context -------------------------------------------------------

    def current(self) -> Span | None:
        """The current thread's active span, or None."""
        return getattr(self._local, "span", None)

    def _set_current(self, span: Span | None) -> None:
        self._local.span = span

    def activate(self, span: Span) -> "_Activation":
        """Make *span* the current thread's active span without owning
        its lifetime — used to adopt a root span created on another
        thread (the service's submit side) onto a worker thread."""
        return _Activation(self, span)

    # -- spans ---------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        root: bool = False,
        stats: IoStats | None = None,
        attrs: dict[str, object] | None = None,
    ) -> _SpanContext:
        """Open a span as a context manager.

        Parent resolution: an explicit ``parent=`` wins; otherwise the
        thread's current span; ``root=True`` forces a fresh trace even
        under an active span.  When *stats* is given, the window is
        snapshotted on entry/exit and the delta stored as ``span.io``.
        """
        span = self.begin(name, parent=parent, root=root)
        if attrs:
            span.attrs.update(attrs)
        return _SpanContext(self, span, stats)

    def begin(
        self, name: str, *, parent: Span | None = None, root: bool = False
    ) -> Span:
        """Create a started span without binding it to this thread.

        The caller owns its lifetime: call :meth:`finish` when done.
        Used where a span outlives the creating scope (the service's
        per-query root span, created at submit and finished on a worker).
        """
        if parent is None and not root:
            parent = self.current()
        span_id = next(self._ids)
        span = Span(
            name,
            trace_id=parent.trace_id if parent is not None else span_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
        )
        span.start_s = self.clock()
        if parent is not None:
            parent.children.append(span)
        return span

    def next_span_id(self) -> int:
        """Allocate a fresh span id from this tracer's id space.

        Span ids are only unique *per tracer*: every process counts from
        1, so spans shipped across the wire collide with local ones.
        The collector (:mod:`repro.obs.collect`) re-ids grafted spans
        through this method to keep one trace's ids unambiguous.
        """
        return next(self._ids)

    def finish(self, span: Span) -> None:
        """End a span created with :meth:`begin`; emits root spans."""
        if span.end_s is None:
            span.end_s = self.clock()
        if span.parent_id is None:
            self._finish_trace(span)

    def record_span(
        self,
        name: str,
        *,
        parent: Span | None,
        duration_s: float,
        attrs: dict[str, object] | None = None,
    ) -> Span:
        """Record an already-elapsed segment (e.g. measured queue wait)
        as a finished span ending now."""
        span = self.begin(name, parent=parent, root=parent is None)
        now = self.clock()
        span.start_s = now - max(0.0, duration_s)
        span.end_s = now
        if attrs:
            span.attrs.update(attrs)
        if span.parent_id is None:
            self._finish_trace(span)
        return span

    # -- sinks ---------------------------------------------------------

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        self._sinks.append(sink)

    @property
    def finished_traces(self) -> int:
        return self._finished

    def last_trace(self) -> Span | None:
        """The most recently finished root span, or None."""
        return self.traces[-1] if self.traces else None

    def _finish_trace(self, root: Span) -> None:
        self.traces.append(root)
        self._finished += 1
        for sink in self._sinks:
            try:
                sink(root)
            except Exception:  # noqa: BLE001 - tracing must never fail a query
                pass


class _Activation:
    """Binds an externally owned span as the thread's current span."""

    __slots__ = ("_tracer", "_span", "_previous")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self._span = span
        self._previous: Span | None = None

    def __enter__(self) -> Span:
        self._previous = self._tracer.current()
        self._tracer._set_current(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._set_current(self._previous)


# ----------------------------------------------------------------------
# the disabled tracer
# ----------------------------------------------------------------------


class _NoopSpan:
    """Absorbs every span operation; one shared instance, never mutated."""

    __slots__ = ()
    name = ""
    trace_id = 0
    span_id = 0
    parent_id = None
    duration_s = 0.0
    io = None
    children: list = []
    attrs: dict = {}

    def annotate(self, **attrs: object) -> "_NoopSpan":
        return self

    def walk(self):
        return iter(())

    def io_spans(self) -> list:
        return []

    def io_total(self) -> IoStats:
        return IoStats()

    def to_dict(self) -> dict:
        return {}


class _NoopSpanContext:
    """Allocation-free no-op context manager returned by NoopTracer.span."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()
_NOOP_CM = _NoopSpanContext()


class NoopTracer:
    """The disabled tracer: every operation is a cheap no-op.

    All instrumentation in the engine holds a tracer reference that
    defaults to the shared :data:`NO_TRACER`.  Hot paths guard on the
    single ``enabled`` attribute; the remaining call sites pay two
    attribute lookups and an empty context manager per *phase* (never
    per page), which benchmarks as unmeasurable against query cost.
    """

    enabled = False

    def current(self) -> None:
        return None

    def span(self, name: str, **kwargs: object) -> _NoopSpanContext:
        return _NOOP_CM

    def begin(self, name: str, **kwargs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def next_span_id(self) -> int:
        return 0

    def finish(self, span: object) -> None:
        return None

    def record_span(self, name: str, **kwargs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def activate(self, span: object) -> _NoopSpanContext:
        return _NOOP_CM

    def add_sink(self, sink: object) -> None:
        return None

    def last_trace(self) -> None:
        return None


NO_TRACER = NoopTracer()


def resolve_tracer(tracer: "Tracer | NoopTracer | None") -> "Tracer | NoopTracer":
    """Normalize an optional tracer into a usable one (None → NO_TRACER)."""
    return tracer if tracer is not None else NO_TRACER


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _span_line(span: Span) -> str:
    label = f"{span.name}  {span.duration_s * 1e3:.2f}ms"
    details: list[str] = []
    for key, value in span.attrs.items():
        details.append(f"{key}={value}")
    if span.io is not None:
        io = span.io
        details.append(
            f"io: {io.page_reads} reads "
            f"({io.sma_page_reads} sma / {io.heap_page_reads} heap), "
            f"{io.buffer_hits} hits, {io.tuples_scanned} tuples"
        )
    if details:
        label += "  [" + "; ".join(details) + "]"
    return label


def render_span_tree(root: Span) -> str:
    """Multi-line rendering of one trace (box-drawing connectors)."""
    lines = [_span_line(root)]

    def walk(span: Span, prefix: str) -> None:
        children = span.sorted_children()
        for i, child in enumerate(children):
            last = i == len(children) - 1
            connector = "└─ " if last else "├─ "
            continuation = "   " if last else "│  "
            lines.append(prefix + connector + _span_line(child))
            walk(child, prefix + continuation)

    walk(root, "")
    return "\n".join(lines)
