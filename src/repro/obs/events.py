"""Structured JSONL event log with a non-blocking, bounded queue.

Queries must never block on observability: :meth:`EventLog.emit` only
does a ``put_nowait`` onto a bounded queue; a single daemon writer
thread serializes events to JSON lines and appends them to the file.
When the queue is full the event is *dropped* and counted — the drop
counter is part of the log's own stats (and of the ``/metrics``
exposition), so lossy periods are visible instead of silent.

Event shape: one JSON object per line, always carrying ``ts`` (epoch
seconds), ``seq`` (per-log sequence number) and ``event`` (the type);
everything else is event-specific.  Types emitted by the service layer:

========================  ==============================================
``server_start``          service config (workers, queue depth, ...)
``server_stop``           final outcome counters
``query_start``           ticket id, kind, submitted query
``query_finish``          outcome, latency, strategy, IoStats delta
``slow_query``            over-threshold query + its captured EXPLAIN
``trace``                 a finished span tree (see :mod:`.trace`)
``ambivalent_warning``    a table's grading crossed the break-even
``query_ledger``          per-query resource ledger (queue wait, scatter
                          fan-out, wall seconds by span kind, per-table
                          I/O attribution; see :mod:`.collect`)
========================  ==============================================

Per-query events (``query_start``/``query_finish``/``slow_query``/
``ambivalent_warning``/``ingest_applied``/``query_ledger``) carry a
``trace_id`` so log lines join against the merged span tree — on shard
workers that id is the *router's* global trace id whenever the request
carried a wire trace context.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from typing import IO, TextIO

__all__ = ["EventLog"]

_STOP = object()


class EventLog:
    """Append-only JSONL sink: bounded queue, one writer thread.

    Parameters
    ----------
    path:
        Output file (opened in append mode), or an already-open text
        stream (used by tests; not closed on :meth:`close`).
    maxsize:
        Queue bound.  ``emit`` beyond it drops the event and increments
        :attr:`dropped` instead of blocking the caller.
    """

    def __init__(self, path: str | TextIO, *, maxsize: int = 1024):
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0
        self.written = 0
        self._closed = False
        self._owns_file = isinstance(path, str)
        self.path = path if isinstance(path, str) else getattr(path, "name", "<stream>")
        self._file: IO[str] = (
            open(path, "a", encoding="utf-8") if isinstance(path, str) else path
        )
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-eventlog", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    # producing (any thread, never blocks)
    # ------------------------------------------------------------------

    def emit(self, event: str, **fields: object) -> bool:
        """Enqueue one event; returns False when it was dropped.

        Serialization happens on the writer thread, so the query path
        pays one dict build and one queue put.
        """
        with self._lock:
            if self._closed:
                self.dropped += 1
                return False
            self._seq += 1
            record = {"ts": time.time(), "seq": self._seq, "event": event}
        record.update(fields)
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            with self._lock:
                self.dropped += 1
            return False
        return True

    # ------------------------------------------------------------------
    # writer thread
    # ------------------------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                line = json.dumps(item, default=str, separators=(",", ":"))
                self._file.write(line + "\n")
                self._file.flush()
            except Exception:  # noqa: BLE001 - a bad record must not kill the writer
                with self._lock:
                    self.dropped += 1
            else:
                with self._lock:
                    self.written += 1

    # ------------------------------------------------------------------
    # lifecycle & introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Written/dropped/queued counts (rendered into ``/metrics``)."""
        with self._lock:
            return {
                "written": self.written,
                "dropped": self.dropped,
                "queued": self._queue.qsize(),
                "emitted": self._seq,
            }

    def close(self, *, timeout_s: float = 5.0) -> None:
        """Stop accepting events, drain the queue, close the file."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)  # blocking put: the sentinel must arrive
        self._writer.join(timeout=timeout_s)
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
