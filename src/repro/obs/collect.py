"""Trace collection: graft remote span trees, reconcile I/O, build ledgers.

Distributed queries run in several processes (the router, N shard
workers, and — under ``--scan-backend process`` — a pool of scan
workers), each with its own :class:`~repro.obs.trace.Tracer`.  Three
things stop the remote trees from simply being appended to the parent
trace:

* **span-id collisions** — every tracer counts ids from 1, so remote
  ids collide with local ones;
* **clock skew** — span timestamps are ``time.perf_counter()`` values
  with a *per-process* arbitrary origin, meaningless across processes;
* **naming** — each remote process opens its own root span.

:func:`graft_remote_trace` solves all three: it rebuilds the exported
tree (the ``Span.to_dict()`` JSON shipped in the response frame) under a
local parent span, re-ids every node from the local tracer, rewrites the
trace id, and rebases timestamps into the *anchor* span's window — the
local span that timed the remote call, so the remote tree lands inside
the interval where the work observably happened.  Durations and
relative offsets within the remote tree are preserved exactly; only the
origin shifts.  Original remote ids survive as span attributes so event
records written by the remote process can still be joined to the merged
tree.

On the merged tree, :func:`reconcile` extends PR 4's attribution
invariant to the distributed case — the io-carrying leaf spans (now
living in other processes) must still sum *exactly* to the router-side
query totals — and :func:`build_ledger` distills the per-query resource
ledger (per-table sma/heap page reads, queue wait, scatter fan-out,
wall time by span kind) that the SMA advisor will mine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.obs.trace import Span, Tracer
from repro.storage.stats import IoStats

__all__ = [
    "RECONCILE_FIELDS",
    "ReconcileReport",
    "build_ledger",
    "graft_remote_trace",
    "reconcile",
    "span_from_wire",
]

#: Constructor fields of IoStats — ``as_dict()`` adds derived totals
#: (page_reads, page_accesses) that must not reach the constructor.
_IO_FIELDS = frozenset(field.name for field in dataclasses.fields(IoStats))


def _io_from_wire(payload: dict) -> IoStats:
    """Rebuild an IoStats delta from its ``as_dict()`` wire form."""
    kwargs = {key: value for key, value in payload.items() if key in _IO_FIELDS}
    return IoStats(**kwargs)


def span_from_wire(node: dict) -> Span:
    """Rebuild one exported span tree verbatim (ids and times untouched).

    Mostly a building block for :func:`graft_remote_trace`, which is
    what callers almost always want; useful on its own for inspecting a
    spooled trace record.
    """
    span = Span(
        str(node["name"]),
        trace_id=int(node["trace_id"]),
        span_id=int(node["span_id"]),
        parent_id=None if node.get("parent_id") is None else int(node["parent_id"]),
    )
    span.start_s = float(node["start_s"])
    span.end_s = span.start_s + float(node.get("duration_s", 0.0))
    span.thread_name = str(node.get("thread", span.thread_name))
    attrs = node.get("attrs")
    if attrs:
        span.attrs.update(attrs)
    io = node.get("io")
    if io is not None:
        span.io = _io_from_wire(io)
    for child in node.get("children", ()):
        span.children.append(span_from_wire(child))
    return span


def graft_remote_trace(
    tracer: Tracer,
    parent: Span,
    node: dict,
    *,
    anchor: Span | None = None,
    name: str | None = None,
    attrs: dict[str, object] | None = None,
) -> Span:
    """Attach a remote process's exported span tree under *parent*.

    ``anchor`` is the local span whose ``[start_s, end_s]`` window timed
    the remote call (defaults to *parent*); the remote tree is shifted
    so it sits inside that window — centred when it fits, pinned to the
    window's start when remote durations exceed it (clock skew is
    tolerated, never trusted).  ``name`` renames the grafted root (e.g.
    a worker's generic ``scan_task`` becomes the backend-neutral
    ``scan_morsel`` the rest of the tooling expects); ``attrs`` are
    merged into the grafted root.  Returns the grafted root span.
    """
    window = anchor if anchor is not None else parent
    remote_start = float(node["start_s"])
    remote_dur = max(0.0, float(node.get("duration_s", 0.0)))
    lo = window.start_s
    hi = window.end_s if window.end_s is not None else lo + remote_dur
    slack = (hi - lo) - remote_dur
    offset = lo + max(0.0, slack / 2.0) - remote_start

    def rebuild(node: dict, parent: Span) -> Span:
        span = Span(
            str(node["name"]),
            trace_id=parent.trace_id,
            span_id=tracer.next_span_id(),
            parent_id=parent.span_id,
        )
        span.start_s = float(node["start_s"]) + offset
        span.end_s = span.start_s + float(node.get("duration_s", 0.0))
        span.thread_name = str(node.get("thread", span.thread_name))
        node_attrs = node.get("attrs")
        if node_attrs:
            span.attrs.update(node_attrs)
        io = node.get("io")
        if io is not None:
            span.io = _io_from_wire(io)
        parent.children.append(span)
        for child in node.get("children", ()):
            rebuild(child, span)
        return span

    root = rebuild(node, parent)
    if name is not None:
        root.name = name
    root.annotate(
        remote_trace_id=int(node["trace_id"]),
        remote_span_id=int(node["span_id"]),
    )
    if attrs:
        root.attrs.update(attrs)
    return root


# ----------------------------------------------------------------------
# reconciliation
# ----------------------------------------------------------------------

#: Counters the distributed reconciliation compares, field by field.
#: These are exactly the read-side counters a query window accumulates;
#: each must match between the merged tree's leaf spans and the
#: router-side totals — byte-exact, no tolerance.
RECONCILE_FIELDS = (
    "page_reads",
    "sma_page_reads",
    "heap_page_reads",
    "buffer_hits",
    "tuples_scanned",
    "buckets_skipped",
)


@dataclass(frozen=True)
class ReconcileReport:
    """Outcome of one leaf-span-sum vs query-totals comparison."""

    #: (counter name, sum over io-carrying leaf spans, query total)
    fields: tuple[tuple[str, int, int], ...]

    @property
    def exact(self) -> bool:
        return all(leaf == total for _, leaf, total in self.fields)

    def as_dict(self) -> dict:
        return {
            "exact": self.exact,
            "fields": {
                name: {"leaf_spans": leaf, "query_totals": total}
                for name, leaf, total in self.fields
            },
        }

    def render(self) -> str:
        lines = ["reconciliation (leaf span sums vs query totals):"]
        for name, leaf, total in self.fields:
            verdict = "ok" if leaf == total else "MISMATCH"
            lines.append(f"  {name:18s} {leaf:>10d} vs {total:>10d}  {verdict}")
        lines.append(f"reconciliation: {'exact' if self.exact else 'MISMATCH'}")
        return "\n".join(lines)


def reconcile(root: Span, totals: IoStats) -> ReconcileReport:
    """Compare the merged tree's leaf I/O against the query's totals."""
    leaf = root.io_total()
    return ReconcileReport(
        fields=tuple(
            (name, int(getattr(leaf, name)), int(getattr(totals, name)))
            for name in RECONCILE_FIELDS
        )
    )


# ----------------------------------------------------------------------
# resource ledger
# ----------------------------------------------------------------------

#: Per-table counters the ledger keeps (the advisor's scoring inputs).
_LEDGER_TABLE_FIELDS = (
    "sma_page_reads",
    "heap_page_reads",
    "page_reads",
    "buffer_hits",
    "tuples_scanned",
    "buckets_fetched",
    "buckets_skipped",
)


def build_ledger(root: Span) -> dict:
    """Distill one merged trace into a per-query resource ledger.

    Per-table I/O is attributed by the nearest ancestor span carrying a
    ``table`` attribute (the session annotates its ``execute`` spans,
    scan-pool workers annotate their task roots); io-carrying spans with
    no table in scope land under ``"<unattributed>"`` so nothing is
    silently dropped.  The dict is JSON-ready — it is emitted verbatim
    as the ``query_ledger`` event and folded into the
    ``repro_query_ledger_*`` Prometheus series.
    """
    tables: dict[str, IoStats] = {}

    def attribute(span: Span, table: str | None) -> None:
        owner = span.attrs.get("table")
        if owner is not None:
            table = str(owner)
        if span.io is not None:
            key = table if table is not None else "<unattributed>"
            tables.setdefault(key, IoStats()).merge(span.io)
        for child in span.children:
            attribute(child, table)

    attribute(root, None)

    wall_by_kind: dict[str, float] = {}
    queue_wait_s = 0.0
    fan_out = 0
    span_count = 0
    for span in root.walk():
        span_count += 1
        wall_by_kind[span.name] = wall_by_kind.get(span.name, 0.0) + span.duration_s
        if span.name == "queue_wait":
            queue_wait_s += span.duration_s
        elif span.name == "shard_execute":
            fan_out += 1

    io = root.io_total()
    return {
        "trace_id": root.trace_id,
        "ticket": root.attrs.get("ticket"),
        "kind": root.attrs.get("kind"),
        "outcome": root.attrs.get("outcome"),
        "duration_s": root.duration_s,
        "queue_wait_s": queue_wait_s,
        "fan_out": fan_out,
        "spans": span_count,
        "tables": {
            name: {field: int(getattr(stats, field)) for field in _LEDGER_TABLE_FIELDS}
            for name, stats in sorted(tables.items())
        },
        "wall_by_kind": {name: wall_by_kind[name] for name in sorted(wall_by_kind)},
        "io": io.as_dict(),
    }
