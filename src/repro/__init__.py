"""repro — Small Materialized Aggregates (Moerkotte, VLDB 1998).

A complete, from-scratch reproduction of the SMA paper: a paged storage
engine with a calibrated 1998-era cost model, a TPC-D data generator,
the SMA index structure itself (definitions, SMA-files, Section 3.1
grading, SMA_Scan / SMA_GAggr operators, hierarchical and semi-join
SMAs, incremental maintenance), the baselines the paper compares
against (sequential scan, B⁺-tree, projection index, materialized data
cube), a small SQL front-end, and one experiment per table/figure of
the paper's evaluation.

Quickstart::

    from repro import Catalog, Session
    from repro.tpcd import load_lineitem, query1

    catalog = Catalog("./db")
    load_lineitem(catalog, scale_factor=0.01, clustering="sorted")
    session = Session(catalog)
    result = session.execute(query1(), mode="auto")
    print(result)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.errors import (
    CatalogError,
    ChecksumError,
    ExecutionError,
    ParseError,
    PlanningError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    SchemaError,
    ServerError,
    ServerOverloadedError,
    ServerShutdownError,
    SmaDefinitionError,
    SmaIntegrityError,
    SmaStateError,
    StorageError,
    TornWriteError,
    TransientIOError,
)
from repro.core import (
    AggregateKind,
    AggregateSpec,
    BucketPartitioning,
    Grade,
    HierarchicalMinMax,
    SmaDefinition,
    SmaFile,
    SmaMaintainer,
    SmaSet,
    build_sma_set,
    count_star,
    maximum,
    minimum,
    semijoin,
    total,
)
from repro.core.aggregates import average
from repro.lang import and_, cmp, col, const, not_, or_
from repro.query import (
    AggregateQuery,
    OutputAggregate,
    QueryResult,
    ScanQuery,
    Session,
)
from repro.sql import parse_definitions, parse_statement
from repro.storage import (
    BOOL,
    BucketLayout,
    Catalog,
    Column,
    DATE,
    DiskModel,
    FLOAT64,
    INT32,
    INT64,
    IoStats,
    MODERN_DISK,
    PAPER_DISK,
    Schema,
    Table,
    char,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateKind",
    "AggregateQuery",
    "AggregateSpec",
    "BOOL",
    "BucketLayout",
    "BucketPartitioning",
    "Catalog",
    "CatalogError",
    "ChecksumError",
    "Column",
    "DATE",
    "DiskModel",
    "ExecutionError",
    "FLOAT64",
    "Grade",
    "HierarchicalMinMax",
    "INT32",
    "INT64",
    "IoStats",
    "MODERN_DISK",
    "OutputAggregate",
    "PAPER_DISK",
    "ParseError",
    "PlanningError",
    "QueryCancelledError",
    "QueryResult",
    "QueryTimeoutError",
    "ReproError",
    "ScanQuery",
    "Schema",
    "SchemaError",
    "ServerError",
    "ServerOverloadedError",
    "ServerShutdownError",
    "Session",
    "SmaDefinition",
    "SmaDefinitionError",
    "SmaFile",
    "SmaIntegrityError",
    "SmaMaintainer",
    "SmaSet",
    "SmaStateError",
    "StorageError",
    "Table",
    "TornWriteError",
    "TransientIOError",
    "and_",
    "average",
    "build_sma_set",
    "char",
    "cmp",
    "col",
    "const",
    "count_star",
    "maximum",
    "minimum",
    "not_",
    "or_",
    "parse_definitions",
    "parse_statement",
    "semijoin",
    "total",
]
