#!/usr/bin/env python3
"""Semi-join SMAs (Section 4): pruning R's buckets with S's bounds.

For the pattern ``select R.* from R, S where R.A theta S.B``, the global
min/max of S.B turns the join condition into an equivalent selection on
R.A, which the ordinary SMA grading machinery evaluates — skipping every
R bucket that cannot contain a join partner.

Here R is LINEITEM (clustered on shipdate) and S is the earliest slice
of ORDERS; ``L_SHIPDATE < O_ORDERDATE`` only matches early lineitems, so
the reduction skips almost the whole relation.

Run:  python examples/semijoin_reduction.py
"""

import tempfile

import numpy as np

from repro import Catalog, semijoin
from repro.core.semijoin import collect_bounds, reduction_predicate
from repro.tpcd import GenConfig, generate_tables, load_lineitem, load_table


def main(scale_factor: float = 0.01) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-semijoin-") as directory:
        catalog = Catalog(directory)
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        lineitem = loaded.table

        orders = generate_tables(
            GenConfig(scale_factor=scale_factor, seed=5), ("ORDERS",)
        )["ORDERS"]
        orders = orders[np.argsort(orders["O_ORDERDATE"], kind="stable")]
        early = orders[: max(len(orders) // 50, 1)]  # earliest 2% of orders
        s_table = load_table(catalog, "ORDERS", early)
        print(f"R = LINEITEM: {lineitem.num_records} tuples, "
              f"{lineitem.num_buckets} buckets")
        print(f"S = earliest ORDERS slice: {s_table.num_records} tuples\n")

        bounds = collect_bounds(s_table, "O_ORDERDATE")
        predicate = reduction_predicate("L_SHIPDATE", "<", bounds)
        print(f"derived reduction predicate: {predicate}\n")

        before = catalog.stats.snapshot()
        matches, _ = semijoin(
            lineitem, "L_SHIPDATE", "<", s_table, "O_ORDERDATE",
            sma_set=loaded.sma_set,
        )
        reduced = catalog.stats.snapshot() - before

        before = catalog.stats.snapshot()
        matches_scan, _ = semijoin(
            lineitem, "L_SHIPDATE", "<", s_table, "O_ORDERDATE"
        )
        full = catalog.stats.snapshot() - before

        assert len(matches) == len(matches_scan)
        print(f"semi-join result: {len(matches)} LINEITEM tuples")
        print(f"  with SMA reduction : fetched {reduced.buckets_fetched} buckets, "
              f"skipped {reduced.buckets_skipped}")
        print(f"  without            : fetched {full.buckets_fetched} buckets")
        saved = 1 - reduced.buckets_fetched / max(full.buckets_fetched, 1)
        print(f"  input reduction    : {saved:.1%} of bucket fetches avoided")
        catalog.close()


if __name__ == "__main__":
    main()
