#!/usr/bin/env python3
"""The paper's headline experiment: TPC-D Query 1 with and without SMAs.

Loads LINEITEM sorted on L_SHIPDATE (the paper's optimal case), builds
the eight Figure 4 SMA definitions (26 SMA-files), and reproduces the
Section 2.4 runtime table: full scan vs SMA cold vs SMA warm, with a
linear projection of the simulated clock to the paper's SF=1 scale.

Run:  python examples/tpcd_query1.py [scale_factor]
"""

import sys
import tempfile

from repro import Catalog, PAPER_DISK, Session
from repro.bench.experiments import PAPER_SF1_BUCKETS, _project_stats
from repro.bench.harness import format_table, human_seconds
from repro.tpcd import load_lineitem, query1


def main(scale_factor: float = 0.05) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-q1-") as directory:
        catalog = Catalog(directory, buffer_pages=8192)
        print(f"generating + loading LINEITEM at SF={scale_factor} "
              f"(sorted on L_SHIPDATE) ...")
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        table = loaded.table
        sma_set = loaded.sma_set
        print(f"  {table.num_records} tuples, {table.num_buckets} buckets, "
              f"{table.size_bytes / 2**20:.1f} MiB")
        print(f"  {sma_set.num_files} SMA-files "
              f"({sma_set.total_bytes / table.size_bytes:.1%} of the relation)\n")

        session = Session(catalog)
        query = query1(delta=90)
        factor = PAPER_SF1_BUCKETS / table.num_buckets

        runs = [
            ("Query 1 without SMAs (cold)", session.execute(query, mode="scan", cold=True), "128 s"),
            ("Query 1 with SMAs (cold)", session.execute(query, mode="sma", cold=True), "4.9 s"),
            ("Query 1 with SMAs (warm)", session.execute(query, mode="sma"), "1.9 s"),
        ]
        rows = []
        for label, result, paper in runs:
            projected = PAPER_DISK.seconds(_project_stats(result.stats, factor))
            rows.append(
                (
                    label,
                    human_seconds(result.wall_seconds),
                    human_seconds(result.simulated_seconds),
                    human_seconds(projected),
                    paper,
                )
            )
        print(format_table(
            ["configuration", "wall", "simulated", "projected@SF=1", "paper@SF=1"],
            rows,
        ))
        scan, cold, warm = (r for _, r, _ in runs)
        print(f"\nspeedup (simulated): {scan.simulated_seconds / cold.simulated_seconds:.1f}x cold, "
              f"{scan.simulated_seconds / warm.simulated_seconds:.1f}x warm")
        print(f"ambivalent buckets: {cold.plan.fraction_ambivalent:.2%}")
        print("\nQuery 1 result (both plans return identical rows):")
        print(warm)
        catalog.close()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
