#!/usr/bin/env python3
"""Living with SMAs: incremental maintenance and hierarchical SMAs (§2.1, §4).

Part 1 appends a day of new orders to an SMA-indexed table through
:class:`SmaMaintainer` and shows the update bill: min/max/sum/count all
advance from the new tuples alone, costing about one SMA page write per
touched entry — the paper's "at most one additional page access".

Part 2 builds a second-level SMA over the first-level min/max files and
compares the SMA-entry reads needed to grade a predicate: qualifying or
disqualifying second-level blocks spare the first-level pages entirely.

Run:  python examples/maintenance_and_hierarchy.py
"""

import os
import tempfile

import numpy as np

from repro import Catalog, SmaMaintainer, HierarchicalMinMax, cmp
from repro.storage.types import int_to_date
from repro.tpcd import GenConfig, generate_tables, load_lineitem


def main(scale_factor: float = 0.01) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-maint-") as directory:
        catalog = Catalog(directory)
        loaded = load_lineitem(
            catalog, scale_factor=scale_factor, clustering="sorted"
        )
        table, sma_set = loaded.table, loaded.sma_set

        # ---- Part 1: incremental inserts -------------------------------
        maintainer = SmaMaintainer(table, [sma_set])
        fresh = generate_tables(
            GenConfig(scale_factor=scale_factor, seed=99), ("LINEITEM",)
        )["LINEITEM"]
        fresh = fresh[np.argsort(fresh["L_SHIPDATE"], kind="stable")][:8192]

        before = catalog.stats.snapshot()
        buckets_before = table.num_buckets
        maintainer.insert(fresh)
        delta = catalog.stats.snapshot() - before
        data_pages = table.num_buckets - buckets_before
        print("incremental insert through SmaMaintainer:")
        print(f"  inserted {len(fresh)} tuples -> {table.num_buckets - buckets_before} "
              f"new buckets")
        print(f"  total page writes: {delta.page_writes} "
              f"({delta.page_writes / len(fresh):.4f} per tuple; "
              f"~{data_pages} were data pages, the rest SMA-file appends)")

        # The SMA-files remain exact: re-grade and cross-check one bucket.
        cutoff = int_to_date(int(fresh["L_SHIPDATE"][0]))
        predicate = cmp("L_SHIPDATE", ">=", cutoff)
        partitioning = sma_set.partition(predicate, charge=False)
        print(f"  after insert, grading still exact: "
              f"{partitioning.num_qualifying} q / "
              f"{partitioning.num_disqualifying} d / "
              f"{partitioning.num_ambivalent} a buckets\n")

        # ---- Part 2: hierarchical SMAs ---------------------------------
        hierarchy = HierarchicalMinMax.build(
            "L_SHIPDATE",
            sma_set.files_of("min")[()],
            sma_set.files_of("max")[()],
            catalog.pool,
            os.path.join(directory, "hierarchy"),
            entries_per_block=64,
        )
        mins = sma_set.files_of("min")[()].values(charge=False)
        cutoff = int_to_date(int(np.percentile(mins, 5)))
        predicate = cmp("L_SHIPDATE", "<=", cutoff).bind(table.schema)

        catalog.go_cold()
        before = catalog.stats.snapshot()
        flat = hierarchy.flat_partition(predicate, table.num_buckets)
        flat_cost = catalog.stats.snapshot() - before

        catalog.go_cold()
        before = catalog.stats.snapshot()
        hier = hierarchy.partition(predicate, table.num_buckets)
        hier_cost = catalog.stats.snapshot() - before

        assert flat == hier
        print("hierarchical SMA grading (5%-selectivity predicate):")
        print(f"  flat first-level grading : {flat_cost.sma_entries_read} entries, "
              f"{flat_cost.page_reads} page reads")
        print(f"  two-level grading        : {hier_cost.sma_entries_read} entries, "
              f"{hier_cost.page_reads} page reads")
        print(f"  identical partitionings, "
              f"{flat_cost.sma_entries_read - hier_cost.sma_entries_read} "
              f"first-level entry reads saved (second level: "
              f"{hierarchy.level2_pages} page(s))")
        catalog.close()


if __name__ == "__main__":
    main()
