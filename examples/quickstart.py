#!/usr/bin/env python3
"""Quickstart: build a table, define SMAs in SQL, run a query both ways.

Creates a small sales table, defines min/max/count/sum SMAs with the
paper's ``define sma`` syntax, and runs one grouping-aggregation query
with and without SMAs, printing the rows, plan choice and both clocks
(measured wall time and simulated 1998-hardware time).

Run:  python examples/quickstart.py
"""

import datetime
import tempfile

from repro import Catalog, Schema, Session, INT32, DATE, FLOAT64, char


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as directory:
        catalog = Catalog(directory)

        # A toy fact table: orders trickle in roughly by date, so the
        # physical order is (approximately) date order — the implicit
        # time-of-creation clustering the paper builds on.
        schema = Schema.of(
            ("order_id", INT32),
            ("sold_on", DATE),
            ("amount", FLOAT64),
            ("region", char(5)),
        )
        sales = catalog.create_table("SALES", schema, clustered_on="sold_on")
        start = datetime.date(2024, 1, 1)
        rows = [
            (
                i,
                start + datetime.timedelta(days=i // 200),
                float(10 + i % 90),
                ["NORTH", "SOUTH", "EAST", "WEST"][i % 4],
            )
            for i in range(50_000)
        ]
        sales.append_rows(rows)
        print(f"loaded {sales.num_records} rows into {sales.num_buckets} buckets")

        # Define the SMAs with the paper's syntax: ungrouped min/max on
        # the clustered date column for predicate grading, grouped
        # count/sum for answering aggregates straight from the SMA-files.
        session = Session(catalog)
        sma_set, reports = session.define_smas(
            """
            define sma sold_min select min(sold_on) from SALES;
            define sma sold_max select max(sold_on) from SALES;
            define sma cnt   select count(*)    from SALES group by region;
            define sma rev   select sum(amount) from SALES group by region;
            """,
            set_name="sales_smas",
        )
        print(f"built {sma_set.num_files} SMA-files, {sma_set.total_pages} pages "
              f"({sma_set.total_bytes / sales.size_bytes:.2%} of the table)\n")

        query = """
            SELECT region, SUM(amount) AS revenue, AVG(amount) AS avg_sale,
                   COUNT(*) AS n
            FROM SALES
            WHERE sold_on <= DATE '2024-03-01'
            GROUP BY region
            ORDER BY region
        """
        with_sma = session.sql(query, mode="sma", cold=True)
        without = session.sql(query, mode="scan", cold=True)

        print("results (identical for both plans):")
        print(with_sma)
        print()
        print(f"SMA plan : {with_sma.plan.strategy}, "
              f"{with_sma.plan.fraction_ambivalent:.1%} ambivalent buckets, "
              f"simulated {with_sma.simulated_seconds * 1000:.1f} ms")
        print(f"scan plan: {without.plan.strategy}, "
              f"simulated {without.simulated_seconds * 1000:.1f} ms")
        print(f"speedup  : {without.simulated_seconds / with_sma.simulated_seconds:.1f}x "
              f"(simulated 1998 hardware)")
        assert with_sma.rows == without.rows

        # The planner makes this choice itself in auto mode:
        auto = session.sql(query)
        print(f"auto mode chose: {auto.plan.strategy} ({auto.plan.reason})")
        catalog.close()


if __name__ == "__main__":
    main()
