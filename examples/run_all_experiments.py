#!/usr/bin/env python3
"""Regenerate every paper table/figure (the full evaluation suite).

Runs all experiments of :mod:`repro.bench.experiments` — one per table
and figure of the paper plus the extensions — and prints each result in
paper-style tabular form.  This is the script that produced the numbers
recorded in EXPERIMENTS.md.

Run:  python examples/run_all_experiments.py          (~2-4 minutes)
      python examples/run_all_experiments.py --fast   (smaller scale)
"""

import sys
import time

from repro.bench import ALL_EXPERIMENTS

#: Scale overrides for the --fast mode (CI-friendly).
_FAST_OVERRIDES = {
    "exp_sma_creation": {"scale_factor": 0.005},
    "exp_space_overhead": {"scale_factor": 0.005},
    "exp_query1_speedup": {"scale_factor": 0.01},
    "exp_breakeven_sweep": {
        "scale_factor": 0.01,
        "fractions": (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    },
    "exp_hierarchical": {"scale_factor": 0.01},
    "exp_bucket_size": {"scale_factor": 0.01, "pages_per_bucket": (1, 4, 16)},
    "exp_query6": {"scale_factor": 0.01},
    "exp_modern_hardware": {"scale_factor": 0.01},
}


def main(fast: bool = False) -> None:
    started = time.perf_counter()
    for experiment in ALL_EXPERIMENTS:
        overrides = _FAST_OVERRIDES.get(experiment.__name__, {}) if fast else {}
        t0 = time.perf_counter()
        result = experiment(**overrides)
        elapsed = time.perf_counter() - t0
        print()
        print(result.render())
        print(f"[{experiment.__name__} finished in {elapsed:.1f}s]")
    print(f"\nall experiments done in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
