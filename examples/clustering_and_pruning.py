#!/usr/bin/env python3
"""Why SMAs work: implicit clustering and bucket pruning (Figure 2).

Loads the same LINEITEM data under three physical layouts — perfectly
sorted, time-of-creation (the paper's diagonal data distribution), and
uniformly shuffled — then grades all buckets for the same shipdate
predicate under each layout and shows the qualifying / disqualifying /
ambivalent split.  The clustering story of Section 2.2 appears directly
in the numbers: SMAs prune almost everything on (even imperfectly)
clustered data and nothing on shuffled data.

Run:  python examples/clustering_and_pruning.py
"""

import tempfile

import numpy as np

from repro import Catalog, cmp
from repro.bench.harness import format_table
from repro.storage.types import int_to_date
from repro.tpcd import diagonal_distribution, load_lineitem


def main(scale_factor: float = 0.01) -> None:
    # Figure 2's diagonal data distribution, in numbers: event dates vs
    # warehouse-introduction dates are near-perfectly correlated.
    rng = np.random.default_rng(11)
    events, introductions = diagonal_distribution(rng, 50_000)
    lag = introductions - events
    correlation = np.corrcoef(events, introductions)[0, 1]
    print("diagonal data distribution (Figure 2):")
    print(f"  corr(event date, introduction date) = {correlation:.4f}")
    print(f"  introduction lag: mean {lag.mean():.1f} days, "
          f"std {lag.std():.1f} days, all >= 0: {bool((lag >= 0).all())}\n")

    rows = []
    for clustering in ("sorted", "toc", "uniform"):
        with tempfile.TemporaryDirectory(prefix="repro-clust-") as directory:
            catalog = Catalog(directory)
            loaded = load_lineitem(
                catalog, scale_factor=scale_factor, clustering=clustering
            )
            sma_set = loaded.sma_set
            # Grade at the midpoint of the date range — a mid-selectivity
            # predicate that is meaningful under every layout.
            max_values = sma_set.files_of("max")[()].values(charge=False)
            min_values = sma_set.files_of("min")[()].values(charge=False)
            cutoff = int_to_date(
                (int(min_values.min()) + int(max_values.max())) // 2
            )
            partitioning = sma_set.partition(
                cmp("L_SHIPDATE", "<=", cutoff), charge=False
            )
            rows.append(
                (
                    clustering,
                    partitioning.num_buckets,
                    partitioning.num_qualifying,
                    partitioning.num_disqualifying,
                    partitioning.num_ambivalent,
                    f"{partitioning.fraction_ambivalent:.1%}",
                )
            )
            catalog.close()
    print("bucket grading for `L_SHIPDATE <= median` under each layout:")
    print(format_table(
        ["clustering", "buckets", "qualify", "disqualify", "ambivalent", "amb %"],
        rows,
    ))
    print("\nreading: with clustering, nearly every bucket is settled from "
          "the SMA-files alone; uniformly shuffled data makes every bucket "
          "span the whole date range, so min/max pruning cannot help — "
          "exactly the paper's Section 2.2 argument.")


if __name__ == "__main__":
    main()
